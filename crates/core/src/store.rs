//! The per-process replicated event store.
//!
//! Gapless delivery replicates every ingested event at all available
//! processes (§4.1). [`EventStore`] is one process's replica: it
//! deduplicates (the ring revisits processes), answers the Bayou-style
//! watermark queries used by successor synchronization, and computes
//! the difference set to ship to a lagging successor.
//!
//! The store is sharded by sensor ([`EventStore::with_shards`]): each
//! sensor hashes to one shard's `BTreeMap`, so the insert/seen/prune
//! operations on the delivery hot path walk a tree holding only
//! `sensors / shards` keys instead of one global map. Cross-sensor
//! queries (watermarks, diffs) merge the shards back into sensor order,
//! keeping the wire encoding deterministic regardless of shard count.

use std::collections::{BTreeMap, HashMap};

use rivulet_types::{ArenaStats, Event, EventId, PayloadArena, SensorId, Time};

type SensorShard = BTreeMap<SensorId, BTreeMap<u64, Event>>;

/// A bounded, per-sensor-ordered store of replicated events, sharded by
/// sensor.
///
/// Within a shard, sensors live in a `BTreeMap` so per-shard iteration
/// is sensor-ordered for free; cross-shard queries merge the (already
/// sorted) shard iterators so callers always observe ascending sensor
/// order, exactly as the pre-sharding flat layout did.
#[derive(Debug)]
pub struct EventStore {
    shards: Vec<SensorShard>,
    cap_per_sensor: usize,
    inserted: u64,
    evicted: u64,
    /// When attached ([`EventStore::enable_arena`]), blob payloads that
    /// pin a larger backing buffer (views into arrival frames) are
    /// re-homed into recycled arena chunks on insert, so a retained
    /// 40-byte payload stops holding a kilobyte frame alive.
    arena: Option<PayloadArena>,
}

impl EventStore {
    /// Creates a single-shard store retaining at most `cap_per_sensor`
    /// events per sensor (oldest evicted first). Equivalent to the
    /// original flat layout; production processes use
    /// [`EventStore::with_shards`].
    ///
    /// # Panics
    ///
    /// Panics if `cap_per_sensor` is zero.
    #[must_use]
    pub fn new(cap_per_sensor: usize) -> Self {
        Self::with_shards(cap_per_sensor, 1)
    }

    /// Creates a store with `shards` sensor shards.
    ///
    /// # Panics
    ///
    /// Panics if `cap_per_sensor` or `shards` is zero.
    #[must_use]
    pub fn with_shards(cap_per_sensor: usize, shards: usize) -> Self {
        assert!(cap_per_sensor > 0, "store capacity must be positive");
        assert!(shards > 0, "store shard count must be positive");
        Self {
            shards: (0..shards).map(|_| SensorShard::new()).collect(),
            cap_per_sensor,
            inserted: 0,
            evicted: 0,
            arena: None,
        }
    }

    /// Attaches a payload arena: from now on, inserted events whose
    /// blob payload pins a larger backing allocation are re-homed into
    /// dense recycled chunks ([`PayloadArena::rehome`]).
    pub fn enable_arena(&mut self) {
        if self.arena.is_none() {
            self.arena = Some(PayloadArena::new());
        }
    }

    /// Arena allocation counters; all-zero when no arena is attached.
    #[must_use]
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena
            .as_ref()
            .map(PayloadArena::stats)
            .unwrap_or_default()
    }

    #[inline]
    fn shard_index(&self, sensor: SensorId) -> usize {
        sensor.as_u32() as usize % self.shards.len()
    }

    #[inline]
    fn shard(&self, sensor: SensorId) -> &SensorShard {
        &self.shards[self.shard_index(sensor)]
    }

    #[inline]
    fn shard_mut(&mut self, sensor: SensorId) -> &mut SensorShard {
        let i = self.shard_index(sensor);
        &mut self.shards[i]
    }

    /// Sensor maps across all shards, ascending by sensor. With one
    /// shard this is the shard's own iterator; with more, a k-way merge
    /// over the per-shard (already sorted) iterators.
    fn iter_sensors(&self) -> impl Iterator<Item = (&SensorId, &BTreeMap<u64, Event>)> {
        let mut cursors: Vec<_> = self.shards.iter().map(|s| s.iter().peekable()).collect();
        std::iter::from_fn(move || {
            let mut best: Option<(usize, SensorId)> = None;
            for (i, c) in cursors.iter_mut().enumerate() {
                if let Some((sensor, _)) = c.peek() {
                    if best.is_none_or(|(_, k)| **sensor < k) {
                        best = Some((i, **sensor));
                    }
                }
            }
            best.and_then(|(i, _)| cursors[i].next())
        })
    }

    /// Whether the event identified by `id` has been stored before.
    #[must_use]
    pub fn seen(&self, id: EventId) -> bool {
        self.shard(id.sensor)
            .get(&id.sensor)
            .is_some_and(|m| m.contains_key(&id.seq))
    }

    /// Inserts `event`; returns `true` if it was new, `false` if it was
    /// a duplicate (in which case the store is unchanged).
    pub fn insert(&mut self, mut event: Event) -> bool {
        let cap = self.cap_per_sensor;
        let mut evicted = 0u64;
        {
            let shard = self.shard_index(event.id.sensor);
            let per = self.shards[shard].entry(event.id.sensor).or_default();
            if per.contains_key(&event.id.seq) {
                return false;
            }
            // Re-home only *retained* payloads (duplicates bailed out
            // above): the copy happens once per stored event, off the
            // dedup fast path.
            if let Some(arena) = &mut self.arena {
                event.payload = arena.rehome(event.payload);
            }
            per.insert(event.id.seq, event);
            while per.len() > cap {
                let oldest = *per.keys().next().expect("non-empty");
                per.remove(&oldest);
                evicted += 1;
            }
        }
        self.inserted += 1;
        self.evicted += evicted;
        true
    }

    /// The highest sequence number stored for `sensor`, if any — the
    /// Bayou-style watermark exchanged during successor sync.
    #[must_use]
    pub fn watermark(&self, sensor: SensorId) -> Option<u64> {
        self.shard(sensor)
            .get(&sensor)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// All `(sensor, watermark)` pairs, ascending by sensor — the shard
    /// merge yields sensor order directly, so the wire encoding is
    /// deterministic without a separate sort.
    #[must_use]
    pub fn watermarks(&self) -> Vec<(SensorId, u64)> {
        self.iter_watermarks().collect()
    }

    /// Iterates `(sensor, watermark)` pairs ascending by sensor without
    /// materializing a `Vec`.
    pub fn iter_watermarks(&self) -> impl Iterator<Item = (SensorId, u64)> + '_ {
        self.iter_sensors()
            .filter_map(|(s, m)| m.keys().next_back().map(|q| (*s, *q)))
    }

    /// Events of `sensor` with sequence numbers strictly greater than
    /// `after` (or all if `after` is `None`), ascending.
    #[must_use]
    pub fn events_after(&self, sensor: SensorId, after: Option<u64>) -> Vec<Event> {
        let Some(per) = self.shard(sensor).get(&sensor) else {
            return Vec::new();
        };
        match after {
            None => per.values().cloned().collect(),
            Some(seq) => per
                .range(seq.saturating_add(1)..)
                .map(|(_, e)| e.clone())
                .collect(),
        }
    }

    /// Computes the events a peer with `peer_watermarks` is missing:
    /// for every sensor we know, everything above the peer's watermark.
    ///
    /// This is the paper's Bayou-style sync: it cannot recover holes
    /// *below* the peer's watermark (a deliberate, documented
    /// approximation of §4.1), but after a successor change it brings
    /// the successor up to our high-water mark.
    #[must_use]
    pub fn diff_for(&self, peer_watermarks: &[(SensorId, u64)]) -> Vec<Event> {
        let peer: HashMap<SensorId, u64> = peer_watermarks.iter().copied().collect();
        let mut out = Vec::new();
        // The shard merge is already sensor-ordered; per-sensor ranges
        // stream straight into the output with no intermediate Vec.
        for (sensor, per) in self.iter_sensors() {
            match peer.get(sensor) {
                None => out.extend(per.values().cloned()),
                Some(&wm) => out.extend(per.range(wm.saturating_add(1)..).map(|(_, e)| e.clone())),
            }
        }
        out
    }

    /// Removes all events of `sensor` with sequence numbers `<= upto`,
    /// returning how many were removed.
    ///
    /// Used for watermark-based garbage collection: once every process
    /// has learned (via keep-alives) that the active logic node
    /// processed a sensor's stream through `upto`, those events can
    /// never be needed by a failover replay again, and anti-entropy
    /// only ships events above a peer's watermark — so they are dead
    /// weight. Production GC uses [`EventStore::prune_processed`],
    /// which additionally age-guards against straggler duplicates.
    pub fn prune_through(&mut self, sensor: SensorId, upto: u64) -> usize {
        let Some(per) = self.shard_mut(sensor).get_mut(&sensor) else {
            return 0;
        };
        let removed = if upto == u64::MAX {
            let n = per.len();
            per.clear();
            n
        } else {
            let keep = per.split_off(&(upto + 1));
            let n = per.len();
            *per = keep;
            n
        };
        self.evicted += removed as u64;
        removed
    }

    /// Removes events of `sensor` that are both processed
    /// (`seq <= upto`) **and** old (`emitted_at < emitted_before`),
    /// returning how many were removed.
    ///
    /// The age guard keeps recently processed events around so that a
    /// straggling duplicate copy (a late ring message, broadcast
    /// retransmission, or anti-entropy refill) still hits the store's
    /// duplicate check instead of being re-delivered to applications.
    pub fn prune_processed(&mut self, sensor: SensorId, upto: u64, emitted_before: Time) -> usize {
        let Some(per) = self.shard_mut(sensor).get_mut(&sensor) else {
            return 0;
        };
        let doomed: Vec<u64> = per
            .range(..=upto)
            .filter(|(_, e)| e.emitted_at < emitted_before)
            .map(|(seq, _)| *seq)
            .collect();
        for seq in &doomed {
            per.remove(seq);
        }
        self.evicted += doomed.len() as u64;
        doomed.len()
    }

    /// Events ever inserted (excluding rejected duplicates).
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Events evicted by the per-sensor cap.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Current number of retained events across all sensors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(BTreeMap::len)
            .sum()
    }

    /// Whether the store holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sensor shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Retained events in the fullest shard — the load-balance gauge
    /// exported as `store.shard.max_len`.
    #[must_use]
    pub fn max_shard_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.values().map(BTreeMap::len).sum())
            .max()
            .unwrap_or(0)
    }
}

impl Default for EventStore {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventKind, Time};

    fn ev(sensor: u32, seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(sensor), seq),
            EventKind::Motion,
            Time::from_millis(seq),
        )
    }

    #[test]
    fn insert_dedup_and_seen() {
        let mut s = EventStore::new(10);
        assert!(!s.seen(EventId::new(SensorId(1), 0)));
        assert!(s.insert(ev(1, 0)));
        assert!(s.seen(EventId::new(SensorId(1), 0)));
        assert!(!s.insert(ev(1, 0)), "duplicate rejected");
        assert_eq!(s.inserted(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn watermark_tracks_highest_seq() {
        let mut s = EventStore::new(10);
        assert_eq!(s.watermark(SensorId(1)), None);
        s.insert(ev(1, 5));
        s.insert(ev(1, 2));
        assert_eq!(s.watermark(SensorId(1)), Some(5));
        s.insert(ev(2, 0));
        assert_eq!(s.watermarks(), vec![(SensorId(1), 5), (SensorId(2), 0)]);
    }

    #[test]
    fn events_after_is_exclusive_and_sorted() {
        let mut s = EventStore::new(10);
        for seq in [3, 1, 7, 5] {
            s.insert(ev(1, seq));
        }
        let after3: Vec<u64> = s
            .events_after(SensorId(1), Some(3))
            .iter()
            .map(|e| e.id.seq)
            .collect();
        assert_eq!(after3, vec![5, 7]);
        let all: Vec<u64> = s
            .events_after(SensorId(1), None)
            .iter()
            .map(|e| e.id.seq)
            .collect();
        assert_eq!(all, vec![1, 3, 5, 7]);
        assert!(s.events_after(SensorId(9), None).is_empty());
    }

    #[test]
    fn diff_for_covers_unknown_sensors_and_lagging_peers() {
        let mut s = EventStore::new(10);
        s.insert(ev(1, 0));
        s.insert(ev(1, 1));
        s.insert(ev(2, 4));
        // Peer knows sensor 1 up to 0, nothing of sensor 2.
        let diff = s.diff_for(&[(SensorId(1), 0)]);
        let ids: Vec<(u32, u64)> = diff
            .iter()
            .map(|e| (e.id.sensor.as_u32(), e.id.seq))
            .collect();
        assert_eq!(ids, vec![(1, 1), (2, 4)]);
        // Peer fully caught up → empty diff.
        assert!(s.diff_for(&[(SensorId(1), 1), (SensorId(2), 4)]).is_empty());
    }

    #[test]
    fn diff_for_streams_in_sensor_order() {
        let mut s = EventStore::new(10);
        // Insert sensors out of order; output must be sensor-ascending.
        for sensor in [7u32, 2, 5, 1] {
            s.insert(ev(sensor, 0));
            s.insert(ev(sensor, 1));
        }
        let diff = s.diff_for(&[(SensorId(5), 0)]);
        let ids: Vec<(u32, u64)> = diff
            .iter()
            .map(|e| (e.id.sensor.as_u32(), e.id.seq))
            .collect();
        assert_eq!(
            ids,
            vec![(1, 0), (1, 1), (2, 0), (2, 1), (5, 1), (7, 0), (7, 1)]
        );
        let wms: Vec<(SensorId, u64)> = s.iter_watermarks().collect();
        assert_eq!(wms, s.watermarks());
    }

    #[test]
    fn sharded_store_matches_flat_semantics() {
        // The same event stream through 1-shard and 8-shard stores must
        // be observationally identical on every query path.
        let mut flat = EventStore::new(10);
        let mut sharded = EventStore::with_shards(10, 8);
        assert_eq!(sharded.shard_count(), 8);
        for sensor in [13u32, 2, 8, 21, 5, 16] {
            for seq in [3u64, 0, 7] {
                assert_eq!(
                    flat.insert(ev(sensor, seq)),
                    sharded.insert(ev(sensor, seq))
                );
            }
        }
        assert!(
            !sharded.insert(ev(2, 0)),
            "duplicate rejected across shards"
        );
        assert_eq!(flat.len(), sharded.len());
        assert_eq!(flat.watermarks(), sharded.watermarks());
        let peer = [(SensorId(2), 3), (SensorId(16), 0)];
        let ids = |evs: Vec<Event>| -> Vec<(u32, u64)> {
            evs.iter()
                .map(|e| (e.id.sensor.as_u32(), e.id.seq))
                .collect()
        };
        assert_eq!(ids(flat.diff_for(&peer)), ids(sharded.diff_for(&peer)));
        assert_eq!(
            flat.prune_through(SensorId(13), 3),
            sharded.prune_through(SensorId(13), 3)
        );
        assert_eq!(flat.watermarks(), sharded.watermarks());
        assert!(sharded.max_shard_len() <= sharded.len());
        assert!(sharded.max_shard_len() >= sharded.len().div_ceil(8));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = EventStore::new(3);
        for seq in 0..5 {
            s.insert(ev(1, seq));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        assert!(!s.seen(EventId::new(SensorId(1), 0)));
        assert!(!s.seen(EventId::new(SensorId(1), 1)));
        assert!(s.seen(EventId::new(SensorId(1), 4)));
        assert_eq!(s.watermark(SensorId(1)), Some(4));
    }

    #[test]
    fn prune_through_removes_only_old_events() {
        let mut s = EventStore::new(100);
        for seq in 0..10 {
            s.insert(ev(1, seq));
        }
        s.insert(ev(2, 3));
        assert_eq!(s.prune_through(SensorId(1), 4), 5, "seqs 0..=4 removed");
        assert!(!s.seen(EventId::new(SensorId(1), 4)));
        assert!(s.seen(EventId::new(SensorId(1), 5)));
        assert_eq!(s.watermark(SensorId(1)), Some(9));
        // Other sensors untouched.
        assert!(s.seen(EventId::new(SensorId(2), 3)));
        // Pruning an unknown sensor is a no-op.
        assert_eq!(s.prune_through(SensorId(9), 100), 0);
        // Re-pruning is idempotent.
        assert_eq!(s.prune_through(SensorId(1), 4), 0);
        assert_eq!(s.evicted(), 5);
    }

    #[test]
    fn prune_processed_age_guards() {
        let mut s = EventStore::new(100);
        for seq in 0..10 {
            s.insert(ev(1, seq)); // emitted at seq milliseconds
        }
        // Processed through 9, but only events emitted before t=5ms are
        // old enough to collect.
        let removed = s.prune_processed(SensorId(1), 9, Time::from_millis(5));
        assert_eq!(removed, 5);
        assert!(!s.seen(EventId::new(SensorId(1), 4)));
        assert!(
            s.seen(EventId::new(SensorId(1), 5)),
            "recent events retained"
        );
        // Unprocessed events are never collected regardless of age.
        let removed = s.prune_processed(SensorId(1), 6, Time::MAX);
        assert_eq!(removed, 2, "only seqs 5 and 6");
        assert!(s.seen(EventId::new(SensorId(1), 7)));
    }

    #[test]
    fn prune_at_u64_max_clears_sensor() {
        let mut s = EventStore::new(100);
        s.insert(Event::new(
            EventId::new(SensorId(1), u64::MAX),
            EventKind::Motion,
            Time::ZERO,
        ));
        s.insert(ev(1, 0));
        assert_eq!(s.prune_through(SensorId(1), u64::MAX), 2);
        assert_eq!(s.watermark(SensorId(1)), None);
    }

    #[test]
    #[should_panic(expected = "store capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = EventStore::new(0);
    }

    #[test]
    #[should_panic(expected = "store shard count must be positive")]
    fn zero_shards_panics() {
        let _ = EventStore::with_shards(10, 0);
    }

    #[test]
    fn arena_rehomes_frame_pinning_payloads() {
        use bytes::Bytes;
        use rivulet_types::Payload;
        let mut s = EventStore::new(10);
        s.enable_arena();
        assert_eq!(s.arena_stats(), ArenaStats::default());
        // A payload sliced out of a big "frame" (larger than an arena
        // chunk, so the chunk's own backing is the smaller home) pins
        // the whole frame until re-homed.
        let frame = Bytes::from(vec![3u8; 128 * 1024]);
        let view = frame.slice_ref(&frame[10..50]);
        let mut e = ev(1, 0);
        e.payload = Payload::Blob(view.clone());
        assert!(s.insert(e));
        let stored = &s.events_after(SensorId(1), None)[0];
        let Payload::Blob(b) = &stored.payload else {
            panic!("blob stays blob");
        };
        assert_eq!(*b, view, "payload bytes preserved");
        assert!(
            b.backing_len() < frame.len(),
            "stored payload no longer pins the arrival frame"
        );
        assert_eq!(s.arena_stats().allocs, 1);
        // A duplicate is rejected before any arena work.
        let mut dup = ev(1, 0);
        dup.payload = Payload::Blob(frame.slice_ref(&frame[10..50]));
        assert!(!s.insert(dup));
        assert_eq!(s.arena_stats().allocs, 1, "no copy for duplicates");
        // Without an arena the view passes through untouched.
        let mut plain = EventStore::new(10);
        let mut e2 = ev(2, 0);
        e2.payload = Payload::Blob(frame.slice_ref(&frame[10..50]));
        assert!(plain.insert(e2));
        let Payload::Blob(kept) = &plain.events_after(SensorId(2), None)[0].payload else {
            panic!();
        };
        assert_eq!(kept.backing_len(), frame.len(), "baseline pins the frame");
    }

    #[test]
    fn empty_store_reports_empty() {
        let s = EventStore::new(1);
        assert!(s.is_empty());
        assert!(s.watermarks().is_empty());
        assert!(s.diff_for(&[]).is_empty());
        assert_eq!(s.max_shard_len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rivulet_types::{EventKind, Time};

    fn ev(sensor: u32, seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(sensor), seq),
            EventKind::Motion,
            Time::from_millis(seq),
        )
    }

    proptest! {
        /// After syncing a peer with `diff_for`, the peer's watermark
        /// per sensor equals ours (the Bayou guarantee the ring sync
        /// relies on).
        #[test]
        fn sync_equalizes_watermarks(
            ours in proptest::collection::vec((0u32..4, 0u64..40), 0..80),
            theirs in proptest::collection::vec((0u32..4, 0u64..40), 0..80),
        ) {
            let mut a = EventStore::new(1000);
            let mut b = EventStore::new(1000);
            for (s, q) in ours {
                a.insert(ev(s, q));
            }
            for (s, q) in theirs.iter() {
                // The peer holds a subset of globally emitted events.
                b.insert(ev(*s, *q));
            }
            let diff = a.diff_for(&b.watermarks());
            for e in diff {
                b.insert(e);
            }
            for (sensor, wm) in a.watermarks() {
                let peer_wm = b.watermark(sensor).expect("sensor now known");
                prop_assert!(peer_wm >= wm, "peer {peer_wm} < ours {wm}");
            }
        }

        /// Insert order never affects the retained set (same events,
        /// any order, same store contents).
        #[test]
        fn insert_order_irrelevant(mut seqs in proptest::collection::vec(0u64..100, 1..50)) {
            let mut a = EventStore::new(1000);
            for &q in &seqs {
                a.insert(ev(1, q));
            }
            seqs.reverse();
            let mut b = EventStore::new(1000);
            for &q in &seqs {
                b.insert(ev(1, q));
            }
            prop_assert_eq!(a.watermark(SensorId(1)), b.watermark(SensorId(1)));
            prop_assert_eq!(a.len(), b.len());
            let ia: Vec<u64> = a.events_after(SensorId(1), None).iter().map(|e| e.id.seq).collect();
            let ib: Vec<u64> = b.events_after(SensorId(1), None).iter().map(|e| e.id.seq).collect();
            prop_assert_eq!(ia, ib);
        }

        /// A sharded store is observationally identical to the flat
        /// (single-shard) layout for any insert sequence.
        #[test]
        fn sharding_is_transparent(
            inserts in proptest::collection::vec((0u32..16, 0u64..60), 0..120),
            shards in 1usize..9,
        ) {
            let mut flat = EventStore::new(50);
            let mut sharded = EventStore::with_shards(50, shards);
            for (s, q) in &inserts {
                prop_assert_eq!(flat.insert(ev(*s, *q)), sharded.insert(ev(*s, *q)));
            }
            prop_assert_eq!(flat.len(), sharded.len());
            prop_assert_eq!(flat.watermarks(), sharded.watermarks());
            prop_assert_eq!(flat.inserted(), sharded.inserted());
            let peer = [(SensorId(3), 20), (SensorId(11), 5)];
            let fa: Vec<EventId> = flat.diff_for(&peer).iter().map(|e| e.id).collect();
            let sa: Vec<EventId> = sharded.diff_for(&peer).iter().map(|e| e.id).collect();
            prop_assert_eq!(fa, sa);
        }
    }
}
