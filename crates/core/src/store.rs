//! The per-process replicated event store.
//!
//! Gapless delivery replicates every ingested event at all available
//! processes (§4.1). [`EventStore`] is one process's replica: it
//! deduplicates (the ring revisits processes), answers the Bayou-style
//! watermark queries used by successor synchronization, and computes
//! the difference set to ship to a lagging successor.

use std::collections::{BTreeMap, HashMap};

use rivulet_types::{Event, EventId, SensorId, Time};

/// A bounded, per-sensor-ordered store of replicated events.
///
/// Sensors live in a `BTreeMap` so that every sync-path query
/// ([`EventStore::watermarks`], [`EventStore::diff_for`]) iterates in
/// sensor order directly instead of collecting and re-sorting the key
/// set on each call.
#[derive(Debug, Default)]
pub struct EventStore {
    by_sensor: BTreeMap<SensorId, BTreeMap<u64, Event>>,
    cap_per_sensor: usize,
    inserted: u64,
    evicted: u64,
}

impl EventStore {
    /// Creates a store retaining at most `cap_per_sensor` events per
    /// sensor (oldest evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `cap_per_sensor` is zero.
    #[must_use]
    pub fn new(cap_per_sensor: usize) -> Self {
        assert!(cap_per_sensor > 0, "store capacity must be positive");
        Self {
            by_sensor: BTreeMap::new(),
            cap_per_sensor,
            inserted: 0,
            evicted: 0,
        }
    }

    /// Whether the event identified by `id` has been stored before.
    #[must_use]
    pub fn seen(&self, id: EventId) -> bool {
        self.by_sensor
            .get(&id.sensor)
            .is_some_and(|m| m.contains_key(&id.seq))
    }

    /// Inserts `event`; returns `true` if it was new, `false` if it was
    /// a duplicate (in which case the store is unchanged).
    pub fn insert(&mut self, event: Event) -> bool {
        let per = self.by_sensor.entry(event.id.sensor).or_default();
        if per.contains_key(&event.id.seq) {
            return false;
        }
        per.insert(event.id.seq, event);
        self.inserted += 1;
        while per.len() > self.cap_per_sensor {
            let oldest = *per.keys().next().expect("non-empty");
            per.remove(&oldest);
            self.evicted += 1;
        }
        true
    }

    /// The highest sequence number stored for `sensor`, if any — the
    /// Bayou-style watermark exchanged during successor sync.
    #[must_use]
    pub fn watermark(&self, sensor: SensorId) -> Option<u64> {
        self.by_sensor
            .get(&sensor)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// All `(sensor, watermark)` pairs, ascending by sensor — the map
    /// already iterates in sensor order, so the wire encoding is
    /// deterministic without a sort.
    #[must_use]
    pub fn watermarks(&self) -> Vec<(SensorId, u64)> {
        self.iter_watermarks().collect()
    }

    /// Iterates `(sensor, watermark)` pairs ascending by sensor without
    /// materializing a `Vec`.
    pub fn iter_watermarks(&self) -> impl Iterator<Item = (SensorId, u64)> + '_ {
        self.by_sensor
            .iter()
            .filter_map(|(s, m)| m.keys().next_back().map(|q| (*s, *q)))
    }

    /// Events of `sensor` with sequence numbers strictly greater than
    /// `after` (or all if `after` is `None`), ascending.
    #[must_use]
    pub fn events_after(&self, sensor: SensorId, after: Option<u64>) -> Vec<Event> {
        let Some(per) = self.by_sensor.get(&sensor) else {
            return Vec::new();
        };
        match after {
            None => per.values().cloned().collect(),
            Some(seq) => per
                .range(seq.saturating_add(1)..)
                .map(|(_, e)| e.clone())
                .collect(),
        }
    }

    /// Computes the events a peer with `peer_watermarks` is missing:
    /// for every sensor we know, everything above the peer's watermark.
    ///
    /// This is the paper's Bayou-style sync: it cannot recover holes
    /// *below* the peer's watermark (a deliberate, documented
    /// approximation of §4.1), but after a successor change it brings
    /// the successor up to our high-water mark.
    #[must_use]
    pub fn diff_for(&self, peer_watermarks: &[(SensorId, u64)]) -> Vec<Event> {
        let peer: HashMap<SensorId, u64> = peer_watermarks.iter().copied().collect();
        let mut out = Vec::new();
        // Sensor iteration is already ordered; per-sensor ranges stream
        // straight into the output with no intermediate Vec per sensor.
        for (sensor, per) in &self.by_sensor {
            match peer.get(sensor) {
                None => out.extend(per.values().cloned()),
                Some(&wm) => out.extend(per.range(wm.saturating_add(1)..).map(|(_, e)| e.clone())),
            }
        }
        out
    }

    /// Removes all events of `sensor` with sequence numbers `<= upto`,
    /// returning how many were removed.
    ///
    /// Used for watermark-based garbage collection: once every process
    /// has learned (via keep-alives) that the active logic node
    /// processed a sensor's stream through `upto`, those events can
    /// never be needed by a failover replay again, and anti-entropy
    /// only ships events above a peer's watermark — so they are dead
    /// weight. Production GC uses [`EventStore::prune_processed`],
    /// which additionally age-guards against straggler duplicates.
    pub fn prune_through(&mut self, sensor: SensorId, upto: u64) -> usize {
        let Some(per) = self.by_sensor.get_mut(&sensor) else {
            return 0;
        };
        let removed = if upto == u64::MAX {
            let n = per.len();
            per.clear();
            n
        } else {
            let keep = per.split_off(&(upto + 1));
            let n = per.len();
            *per = keep;
            n
        };
        self.evicted += removed as u64;
        removed
    }

    /// Removes events of `sensor` that are both processed
    /// (`seq <= upto`) **and** old (`emitted_at < emitted_before`),
    /// returning how many were removed.
    ///
    /// The age guard keeps recently processed events around so that a
    /// straggling duplicate copy (a late ring message, broadcast
    /// retransmission, or anti-entropy refill) still hits the store's
    /// duplicate check instead of being re-delivered to applications.
    pub fn prune_processed(&mut self, sensor: SensorId, upto: u64, emitted_before: Time) -> usize {
        let Some(per) = self.by_sensor.get_mut(&sensor) else {
            return 0;
        };
        let doomed: Vec<u64> = per
            .range(..=upto)
            .filter(|(_, e)| e.emitted_at < emitted_before)
            .map(|(seq, _)| *seq)
            .collect();
        for seq in &doomed {
            per.remove(seq);
        }
        self.evicted += doomed.len() as u64;
        doomed.len()
    }

    /// Events ever inserted (excluding rejected duplicates).
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Events evicted by the per-sensor cap.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Current number of retained events across all sensors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_sensor.values().map(BTreeMap::len).sum()
    }

    /// Whether the store holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventKind, Time};

    fn ev(sensor: u32, seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(sensor), seq),
            EventKind::Motion,
            Time::from_millis(seq),
        )
    }

    #[test]
    fn insert_dedup_and_seen() {
        let mut s = EventStore::new(10);
        assert!(!s.seen(EventId::new(SensorId(1), 0)));
        assert!(s.insert(ev(1, 0)));
        assert!(s.seen(EventId::new(SensorId(1), 0)));
        assert!(!s.insert(ev(1, 0)), "duplicate rejected");
        assert_eq!(s.inserted(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn watermark_tracks_highest_seq() {
        let mut s = EventStore::new(10);
        assert_eq!(s.watermark(SensorId(1)), None);
        s.insert(ev(1, 5));
        s.insert(ev(1, 2));
        assert_eq!(s.watermark(SensorId(1)), Some(5));
        s.insert(ev(2, 0));
        assert_eq!(s.watermarks(), vec![(SensorId(1), 5), (SensorId(2), 0)]);
    }

    #[test]
    fn events_after_is_exclusive_and_sorted() {
        let mut s = EventStore::new(10);
        for seq in [3, 1, 7, 5] {
            s.insert(ev(1, seq));
        }
        let after3: Vec<u64> = s
            .events_after(SensorId(1), Some(3))
            .iter()
            .map(|e| e.id.seq)
            .collect();
        assert_eq!(after3, vec![5, 7]);
        let all: Vec<u64> = s
            .events_after(SensorId(1), None)
            .iter()
            .map(|e| e.id.seq)
            .collect();
        assert_eq!(all, vec![1, 3, 5, 7]);
        assert!(s.events_after(SensorId(9), None).is_empty());
    }

    #[test]
    fn diff_for_covers_unknown_sensors_and_lagging_peers() {
        let mut s = EventStore::new(10);
        s.insert(ev(1, 0));
        s.insert(ev(1, 1));
        s.insert(ev(2, 4));
        // Peer knows sensor 1 up to 0, nothing of sensor 2.
        let diff = s.diff_for(&[(SensorId(1), 0)]);
        let ids: Vec<(u32, u64)> = diff
            .iter()
            .map(|e| (e.id.sensor.as_u32(), e.id.seq))
            .collect();
        assert_eq!(ids, vec![(1, 1), (2, 4)]);
        // Peer fully caught up → empty diff.
        assert!(s.diff_for(&[(SensorId(1), 1), (SensorId(2), 4)]).is_empty());
    }

    #[test]
    fn diff_for_streams_in_sensor_order() {
        let mut s = EventStore::new(10);
        // Insert sensors out of order; output must be sensor-ascending.
        for sensor in [7u32, 2, 5, 1] {
            s.insert(ev(sensor, 0));
            s.insert(ev(sensor, 1));
        }
        let diff = s.diff_for(&[(SensorId(5), 0)]);
        let ids: Vec<(u32, u64)> = diff
            .iter()
            .map(|e| (e.id.sensor.as_u32(), e.id.seq))
            .collect();
        assert_eq!(
            ids,
            vec![(1, 0), (1, 1), (2, 0), (2, 1), (5, 1), (7, 0), (7, 1)]
        );
        let wms: Vec<(SensorId, u64)> = s.iter_watermarks().collect();
        assert_eq!(wms, s.watermarks());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = EventStore::new(3);
        for seq in 0..5 {
            s.insert(ev(1, seq));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        assert!(!s.seen(EventId::new(SensorId(1), 0)));
        assert!(!s.seen(EventId::new(SensorId(1), 1)));
        assert!(s.seen(EventId::new(SensorId(1), 4)));
        assert_eq!(s.watermark(SensorId(1)), Some(4));
    }

    #[test]
    fn prune_through_removes_only_old_events() {
        let mut s = EventStore::new(100);
        for seq in 0..10 {
            s.insert(ev(1, seq));
        }
        s.insert(ev(2, 3));
        assert_eq!(s.prune_through(SensorId(1), 4), 5, "seqs 0..=4 removed");
        assert!(!s.seen(EventId::new(SensorId(1), 4)));
        assert!(s.seen(EventId::new(SensorId(1), 5)));
        assert_eq!(s.watermark(SensorId(1)), Some(9));
        // Other sensors untouched.
        assert!(s.seen(EventId::new(SensorId(2), 3)));
        // Pruning an unknown sensor is a no-op.
        assert_eq!(s.prune_through(SensorId(9), 100), 0);
        // Re-pruning is idempotent.
        assert_eq!(s.prune_through(SensorId(1), 4), 0);
        assert_eq!(s.evicted(), 5);
    }

    #[test]
    fn prune_processed_age_guards() {
        let mut s = EventStore::new(100);
        for seq in 0..10 {
            s.insert(ev(1, seq)); // emitted at seq milliseconds
        }
        // Processed through 9, but only events emitted before t=5ms are
        // old enough to collect.
        let removed = s.prune_processed(SensorId(1), 9, Time::from_millis(5));
        assert_eq!(removed, 5);
        assert!(!s.seen(EventId::new(SensorId(1), 4)));
        assert!(
            s.seen(EventId::new(SensorId(1), 5)),
            "recent events retained"
        );
        // Unprocessed events are never collected regardless of age.
        let removed = s.prune_processed(SensorId(1), 6, Time::MAX);
        assert_eq!(removed, 2, "only seqs 5 and 6");
        assert!(s.seen(EventId::new(SensorId(1), 7)));
    }

    #[test]
    fn prune_at_u64_max_clears_sensor() {
        let mut s = EventStore::new(100);
        s.insert(Event::new(
            EventId::new(SensorId(1), u64::MAX),
            EventKind::Motion,
            Time::ZERO,
        ));
        s.insert(ev(1, 0));
        assert_eq!(s.prune_through(SensorId(1), u64::MAX), 2);
        assert_eq!(s.watermark(SensorId(1)), None);
    }

    #[test]
    #[should_panic(expected = "store capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = EventStore::new(0);
    }

    #[test]
    fn empty_store_reports_empty() {
        let s = EventStore::new(1);
        assert!(s.is_empty());
        assert!(s.watermarks().is_empty());
        assert!(s.diff_for(&[]).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rivulet_types::{EventKind, Time};

    fn ev(sensor: u32, seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(sensor), seq),
            EventKind::Motion,
            Time::from_millis(seq),
        )
    }

    proptest! {
        /// After syncing a peer with `diff_for`, the peer's watermark
        /// per sensor equals ours (the Bayou guarantee the ring sync
        /// relies on).
        #[test]
        fn sync_equalizes_watermarks(
            ours in proptest::collection::vec((0u32..4, 0u64..40), 0..80),
            theirs in proptest::collection::vec((0u32..4, 0u64..40), 0..80),
        ) {
            let mut a = EventStore::new(1000);
            let mut b = EventStore::new(1000);
            for (s, q) in ours {
                a.insert(ev(s, q));
            }
            for (s, q) in theirs.iter() {
                // The peer holds a subset of globally emitted events.
                b.insert(ev(*s, *q));
            }
            let diff = a.diff_for(&b.watermarks());
            for e in diff {
                b.insert(e);
            }
            for (sensor, wm) in a.watermarks() {
                let peer_wm = b.watermark(sensor).expect("sensor now known");
                prop_assert!(peer_wm >= wm, "peer {peer_wm} < ours {wm}");
            }
        }

        /// Insert order never affects the retained set (same events,
        /// any order, same store contents).
        #[test]
        fn insert_order_irrelevant(mut seqs in proptest::collection::vec(0u64..100, 1..50)) {
            let mut a = EventStore::new(1000);
            for &q in &seqs {
                a.insert(ev(1, q));
            }
            seqs.reverse();
            let mut b = EventStore::new(1000);
            for &q in &seqs {
                b.insert(ev(1, q));
            }
            prop_assert_eq!(a.watermark(SensorId(1)), b.watermark(SensorId(1)));
            prop_assert_eq!(a.len(), b.len());
            let ia: Vec<u64> = a.events_after(SensorId(1), None).iter().map(|e| e.id.seq).collect();
            let ib: Vec<u64> = b.events_after(SensorId(1), None).iter().map(|e| e.id.seq).collect();
            prop_assert_eq!(ia, ib);
        }
    }
}
