//! The routine execution engine: all-or-nothing multi-actuator
//! command sequences.
//!
//! A *routine* is an ordered list of actuator commands ("leaving home":
//! lights off, thermostat down, door locked) that must fire **all or
//! nothing** — a crash of the coordinating logic node halfway through
//! must never leave the thermostat down but the door unlocked. The
//! engine achieves this with a staged two-phase protocol over the
//! existing radio adapters:
//!
//! 1. **Stage** — every step's command is sent to its actuator as a
//!    [`rivulet_devices::frame::RadioFrame::Stage`]; the actuator
//!    *withholds* it (nothing fires) and replies `StageAck`.
//! 2. **Commit** — once every step is acknowledged, the coordinator
//!    sends `CommitRoutine` to every target in a single activation;
//!    each actuator fires its held steps in step order. Commits are
//!    idempotent, so a recovered coordinator may re-send them.
//! 3. **Abort** — a staging timeout, a refused stage, or a recovered
//!    crash mid-staging sends `AbortRoutine` (actuators discard their
//!    held steps) and issues any declared *compensation* commands.
//!
//! Every state transition — `Staged`, `Committed`, `Aborted`,
//! `Compensated` — is recorded in the hash-chained execution-integrity
//! ledger ([`rivulet_storage::ledger`]) **before** the transition's
//! protocol frames are sent (write-ahead). On a durable home the entry
//! goes through the WAL and survives crashes; recovery classifies each
//! instance by its last ledger entry and either re-commits (idempotent)
//! or aborts and compensates. [`rivulet_storage::LedgerVerifier`] can
//! then audit the recovered chain for tampering.
//!
//! Compensation is a declared safe-state restore, not a rollback:
//! nothing fires before commit, so there is nothing to roll back.
//! A step may declare a `compensate` command (e.g. "unlock the door")
//! issued as a plain actuation after an abort, moving the instance to
//! `Compensated`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rivulet_storage::{LedgerChain, LedgerEntry, RoutineTransition};
use rivulet_types::{ActuatorId, Command, CommandId, CommandKind, RoutineId, Time};

/// One step of a routine: a command for one actuator, with an optional
/// compensation command issued if the routine aborts.
#[derive(Debug, Clone)]
pub struct RoutineStep {
    /// The actuator this step drives.
    pub actuator: ActuatorId,
    /// The command staged (and fired on commit).
    pub kind: CommandKind,
    /// Declared safe-state restore issued as a plain actuation after
    /// an abort. `None` means the step needs no compensation.
    pub compensate: Option<CommandKind>,
}

/// A deployed routine: an ordered multi-actuator command sequence
/// executed all-or-nothing.
#[derive(Debug, Clone)]
pub struct RoutineSpec {
    /// The routine's identity.
    pub id: RoutineId,
    /// Human-readable name ("leaving-home").
    pub name: String,
    /// Steps in firing order.
    pub steps: Vec<RoutineStep>,
}

impl RoutineSpec {
    /// Starts a routine spec with no steps.
    #[must_use]
    pub fn new(id: RoutineId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Appends a step without compensation.
    #[must_use]
    pub fn step(mut self, actuator: ActuatorId, kind: CommandKind) -> Self {
        self.steps.push(RoutineStep {
            actuator,
            kind,
            compensate: None,
        });
        self
    }

    /// Appends a step with a declared compensation command.
    #[must_use]
    pub fn step_compensated(
        mut self,
        actuator: ActuatorId,
        kind: CommandKind,
        compensate: CommandKind,
    ) -> Self {
        self.steps.push(RoutineStep {
            actuator,
            kind,
            compensate: Some(compensate),
        });
        self
    }

    /// The distinct actuators this routine drives.
    #[must_use]
    pub fn actuators(&self) -> Vec<ActuatorId> {
        let mut out: Vec<ActuatorId> = self.steps.iter().map(|s| s.actuator).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Final (or latest) state of one routine firing, as the probe saw it.
#[derive(Debug, Clone)]
pub struct InstanceRecord {
    /// The firing instance.
    pub instance: u64,
    /// The latest transition recorded for it.
    pub state: RoutineTransition,
    /// The staged commands `(actuator, command id)` — the ground truth
    /// a harness cross-checks against actuator effects to detect
    /// partial firings.
    pub commands: Vec<(ActuatorId, CommandId)>,
}

/// Ground truth about one routine's firings, shared with the harness.
/// Like the actuator probes, it survives coordinator crashes.
#[derive(Debug, Default)]
pub struct RoutineProbe {
    triggered: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    compensated: AtomicU64,
    unreachable: AtomicU64,
    instances: Mutex<Vec<InstanceRecord>>,
}

impl RoutineProbe {
    /// Creates an empty probe.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Firings triggered (staged or refused as unreachable).
    #[must_use]
    pub fn triggered(&self) -> u64 {
        self.triggered.load(Ordering::SeqCst)
    }

    /// Firings that reached `Committed`.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::SeqCst)
    }

    /// Firings that reached `Aborted`.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Aborted firings whose compensation was issued.
    #[must_use]
    pub fn compensated(&self) -> u64 {
        self.compensated.load(Ordering::SeqCst)
    }

    /// Triggers refused because a target actuator was not reachable
    /// from the coordinator.
    #[must_use]
    pub fn unreachable(&self) -> u64 {
        self.unreachable.load(Ordering::SeqCst)
    }

    /// Per-instance records, in staging order.
    #[must_use]
    pub fn instances(&self) -> Vec<InstanceRecord> {
        self.instances.lock().expect("probe lock").clone()
    }

    fn record_staged(&self, instance: u64, commands: Vec<(ActuatorId, CommandId)>) {
        self.triggered.fetch_add(1, Ordering::SeqCst);
        self.instances
            .lock()
            .expect("probe lock")
            .push(InstanceRecord {
                instance,
                state: RoutineTransition::Staged,
                commands,
            });
    }

    fn record_transition(&self, instance: u64, state: RoutineTransition) {
        match state {
            RoutineTransition::Committed => {
                self.committed.fetch_add(1, Ordering::SeqCst);
            }
            RoutineTransition::Aborted => {
                self.aborted.fetch_add(1, Ordering::SeqCst);
            }
            RoutineTransition::Compensated => {
                self.compensated.fetch_add(1, Ordering::SeqCst);
            }
            RoutineTransition::Staged => {}
        }
        let mut instances = self.instances.lock().expect("probe lock");
        if let Some(rec) = instances.iter_mut().find(|r| r.instance == instance) {
            rec.state = state;
        }
    }

    fn record_unreachable(&self) {
        self.triggered.fetch_add(1, Ordering::SeqCst);
        self.unreachable.fetch_add(1, Ordering::SeqCst);
    }
}

/// An in-flight firing: staged, awaiting acks.
#[derive(Debug)]
struct Inflight {
    routine: RoutineId,
    /// `(step, actuator, command)` in step order.
    commands: Vec<(u32, ActuatorId, Command)>,
    acked: Vec<bool>,
}

/// What the coordinator must do after a stage ack arrived.
#[derive(Debug)]
pub enum AckOutcome {
    /// Not ours / duplicate / already resolved: nothing to do.
    Ignored,
    /// Every step acknowledged: the `Committed` entry (make it durable,
    /// then send `CommitRoutine` to every target).
    Commit {
        /// The appended ledger entry.
        entry: LedgerEntry,
        /// Distinct actuators to send `CommitRoutine` to.
        targets: Vec<ActuatorId>,
    },
    /// A stage was refused: abort the firing.
    Abort(AbortPlan),
}

/// Everything the coordinator needs to abort a firing: the `Aborted`
/// ledger entry (make it durable first), the targets to send
/// `AbortRoutine` to, and the declared compensations to issue as plain
/// actuations.
#[derive(Debug)]
pub struct AbortPlan {
    /// The aborted routine.
    pub routine: RoutineId,
    /// The aborted instance.
    pub instance: u64,
    /// The appended `Aborted` ledger entry.
    pub entry: LedgerEntry,
    /// Distinct actuators holding staged steps.
    pub targets: Vec<ActuatorId>,
    /// Declared safe-state restores `(actuator, command kind)`.
    pub compensations: Vec<(ActuatorId, CommandKind)>,
}

/// A freshly staged firing: the `Staged` ledger entry (make it durable
/// first) and the stage frames to send.
#[derive(Debug)]
pub struct StagePlan {
    /// The new firing instance.
    pub instance: u64,
    /// The appended `Staged` ledger entry.
    pub entry: LedgerEntry,
    /// `(actuator, step, command)` to send as `Stage` frames.
    pub stages: Vec<(ActuatorId, u32, Command)>,
}

/// What a recovered coordinator must do for one unresolved instance
/// found in the ledger.
#[derive(Debug)]
pub enum RecoveryAction {
    /// The instance committed before the crash: re-send (idempotent)
    /// `CommitRoutine` frames so actuators that missed the original
    /// commit still fire.
    Recommit {
        /// The committed routine.
        routine: RoutineId,
        /// The committed instance.
        instance: u64,
        /// Distinct actuators that held staged steps.
        targets: Vec<ActuatorId>,
    },
    /// The crash interrupted staging: the instance is aborted (nothing
    /// ever fired) and compensated.
    AbortStaged(AbortPlan),
}

/// The per-process routine coordinator. Owned by the process actor;
/// allocated only when [`crate::config::RivuletConfig::routines`] is
/// on.
#[derive(Debug)]
pub struct RoutineEngine {
    specs: HashMap<RoutineId, Arc<RoutineSpec>>,
    probes: HashMap<RoutineId, Arc<RoutineProbe>>,
    chain: LedgerChain,
    next_instance: u64,
    inflight: HashMap<u64, Inflight>,
    /// Every ledger entry appended by this engine incarnation plus the
    /// recovered prefix, in chain order. The durable twin lives in the
    /// WAL; this mirror serves non-durable homes and the harness.
    log: Vec<LedgerEntry>,
}

impl RoutineEngine {
    /// Creates an engine with the ledger chain seeded from `seed`.
    #[must_use]
    pub fn new(seed: u64, routines: &[(Arc<RoutineSpec>, Arc<RoutineProbe>)]) -> Self {
        Self {
            specs: routines
                .iter()
                .map(|(s, _)| (s.id, Arc::clone(s)))
                .collect(),
            probes: routines
                .iter()
                .map(|(s, p)| (s.id, Arc::clone(p)))
                .collect(),
            chain: LedgerChain::seeded(seed),
            next_instance: 0,
            inflight: HashMap::new(),
            log: Vec::new(),
        }
    }

    /// The deployed spec of `routine`, if any.
    #[must_use]
    pub fn spec(&self, routine: RoutineId) -> Option<&Arc<RoutineSpec>> {
        self.specs.get(&routine)
    }

    /// Every ledger entry known to this engine, in chain order.
    #[must_use]
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.log
    }

    /// Instances staged but not yet resolved.
    #[must_use]
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// Records a trigger refused because a target actuator is
    /// unreachable from this coordinator.
    pub fn note_unreachable(&mut self, routine: RoutineId) {
        if let Some(probe) = self.probes.get(&routine) {
            probe.record_unreachable();
        }
    }

    /// Stages a new firing of `routine`. `make_command` mints one
    /// command per step (the caller owns command-id sequencing).
    /// Returns `None` for unknown routines or empty specs.
    pub fn trigger(
        &mut self,
        routine: RoutineId,
        at: Time,
        mut make_command: impl FnMut(ActuatorId, CommandKind) -> Command,
    ) -> Option<StagePlan> {
        let spec = self.specs.get(&routine)?;
        if spec.steps.is_empty() {
            return None;
        }
        let instance = self.next_instance;
        self.next_instance += 1;
        let commands: Vec<(u32, ActuatorId, Command)> = spec
            .steps
            .iter()
            .enumerate()
            .map(|(i, step)| {
                (
                    i as u32,
                    step.actuator,
                    make_command(step.actuator, step.kind),
                )
            })
            .collect();
        let ledger_cmds: Vec<(ActuatorId, CommandId)> =
            commands.iter().map(|(_, a, c)| (*a, c.id)).collect();
        let entry = self.chain.append(
            routine,
            instance,
            RoutineTransition::Staged,
            at,
            ledger_cmds.clone(),
        );
        self.log.push(entry.clone());
        if let Some(probe) = self.probes.get(&routine) {
            probe.record_staged(instance, ledger_cmds);
        }
        let stages = commands
            .iter()
            .map(|(step, actuator, cmd)| (*actuator, *step, cmd.clone()))
            .collect();
        self.inflight.insert(
            instance,
            Inflight {
                routine,
                acked: vec![false; commands.len()],
                commands,
            },
        );
        Some(StagePlan {
            instance,
            entry,
            stages,
        })
    }

    /// Handles a `StageAck`: when the last step acks, the firing
    /// commits; a refused stage aborts it.
    pub fn on_stage_ack(
        &mut self,
        routine: RoutineId,
        instance: u64,
        step: u32,
        accepted: bool,
        at: Time,
    ) -> AckOutcome {
        let Some(fl) = self.inflight.get_mut(&instance) else {
            return AckOutcome::Ignored;
        };
        if fl.routine != routine {
            return AckOutcome::Ignored;
        }
        if !accepted {
            return AckOutcome::Abort(self.abort(instance, at).expect("inflight"));
        }
        let Some(pos) = fl.commands.iter().position(|(s, ..)| *s == step) else {
            return AckOutcome::Ignored;
        };
        if fl.acked[pos] {
            return AckOutcome::Ignored; // duplicate ack
        }
        fl.acked[pos] = true;
        if !fl.acked.iter().all(|a| *a) {
            return AckOutcome::Ignored;
        }
        let fl = self.inflight.remove(&instance).expect("inflight");
        let entry = self.append_transition(&fl, instance, RoutineTransition::Committed, at);
        AckOutcome::Commit {
            entry,
            targets: Self::targets_of(&fl),
        }
    }

    /// Handles the staging-timeout timer for `instance`. `None` when
    /// the firing already resolved (the timer raced the last ack).
    pub fn on_timeout(&mut self, instance: u64, at: Time) -> Option<AbortPlan> {
        self.abort(instance, at)
    }

    /// Records that an aborted instance's compensation commands were
    /// issued, returning the `Compensated` ledger entry.
    pub fn record_compensated(
        &mut self,
        routine: RoutineId,
        instance: u64,
        at: Time,
        commands: Vec<(ActuatorId, CommandId)>,
    ) -> LedgerEntry {
        let entry = self.chain.append(
            routine,
            instance,
            RoutineTransition::Compensated,
            at,
            commands,
        );
        self.log.push(entry.clone());
        if let Some(probe) = self.probes.get(&routine) {
            probe.record_transition(instance, RoutineTransition::Compensated);
        }
        entry
    }

    /// Adopts a recovered ledger (chain order, from
    /// [`rivulet_storage::Recovered::ledger`]): resumes the chain head
    /// and instance numbering, and classifies every unresolved
    /// instance. Crash-interrupted stagings produce fresh `Aborted`
    /// entries (append them to the WAL before sending their frames).
    pub fn recover(&mut self, entries: &[LedgerEntry], at: Time) -> Vec<RecoveryAction> {
        if let Some(last) = entries.last() {
            self.chain = LedgerChain::from_head(last.hash);
            self.next_instance = entries.iter().map(|e| e.instance + 1).max().unwrap_or(0);
        }
        self.log = entries.to_vec();
        // Last transition per (routine, instance), in first-seen order.
        type LastState = (RoutineTransition, Vec<(ActuatorId, CommandId)>);
        let mut order: Vec<(RoutineId, u64)> = Vec::new();
        let mut last: HashMap<(RoutineId, u64), LastState> = HashMap::new();
        for e in entries {
            let key = (e.routine, e.instance);
            if !last.contains_key(&key) {
                order.push(key);
            }
            let staged_cmds = match e.transition {
                // Staged entries carry the authoritative command list.
                RoutineTransition::Staged => e.commands.clone(),
                _ => last.get(&key).map(|(_, c)| c.clone()).unwrap_or_default(),
            };
            last.insert(key, (e.transition, staged_cmds));
        }
        let mut actions = Vec::new();
        for (routine, instance) in order {
            let (transition, commands) = &last[&(routine, instance)];
            let targets: Vec<ActuatorId> = {
                let mut t: Vec<ActuatorId> = commands.iter().map(|(a, _)| *a).collect();
                t.sort_unstable();
                t.dedup();
                t
            };
            match transition {
                RoutineTransition::Committed => actions.push(RecoveryAction::Recommit {
                    routine,
                    instance,
                    targets,
                }),
                RoutineTransition::Staged => {
                    let entry = self.chain.append(
                        routine,
                        instance,
                        RoutineTransition::Aborted,
                        at,
                        Vec::new(),
                    );
                    self.log.push(entry.clone());
                    if let Some(probe) = self.probes.get(&routine) {
                        probe.record_transition(instance, RoutineTransition::Aborted);
                    }
                    actions.push(RecoveryAction::AbortStaged(AbortPlan {
                        routine,
                        instance,
                        entry,
                        targets,
                        compensations: self.compensations_of(routine),
                    }));
                }
                RoutineTransition::Aborted | RoutineTransition::Compensated => {}
            }
        }
        actions
    }

    fn compensations_of(&self, routine: RoutineId) -> Vec<(ActuatorId, CommandKind)> {
        self.specs
            .get(&routine)
            .map(|spec| {
                spec.steps
                    .iter()
                    .filter_map(|s| s.compensate.map(|k| (s.actuator, k)))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn targets_of(fl: &Inflight) -> Vec<ActuatorId> {
        let mut t: Vec<ActuatorId> = fl.commands.iter().map(|(_, a, _)| *a).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    fn append_transition(
        &mut self,
        fl: &Inflight,
        instance: u64,
        transition: RoutineTransition,
        at: Time,
    ) -> LedgerEntry {
        // Commands are carried by the Staged entry; terminal entries
        // reference the instance only (see LedgerEntry::commands).
        let entry = self
            .chain
            .append(fl.routine, instance, transition, at, Vec::new());
        self.log.push(entry.clone());
        if let Some(probe) = self.probes.get(&fl.routine) {
            probe.record_transition(instance, transition);
        }
        entry
    }

    fn abort(&mut self, instance: u64, at: Time) -> Option<AbortPlan> {
        let fl = self.inflight.remove(&instance)?;
        let entry = self.append_transition(&fl, instance, RoutineTransition::Aborted, at);
        Some(AbortPlan {
            routine: fl.routine,
            instance,
            entry,
            compensations: self.compensations_of(fl.routine),
            targets: Self::targets_of(&fl),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_storage::LedgerVerifier;
    use rivulet_types::{ActuationState, OperatorId, ProcessId};

    fn spec() -> RoutineSpec {
        RoutineSpec::new(RoutineId(1), "leaving-home")
            .step(
                ActuatorId(0),
                CommandKind::Set(ActuationState::Switch(false)),
            )
            .step_compensated(
                ActuatorId(1),
                CommandKind::Set(ActuationState::Switch(true)),
                CommandKind::Set(ActuationState::Switch(false)),
            )
    }

    fn engine() -> (RoutineEngine, Arc<RoutineProbe>) {
        let probe = RoutineProbe::new();
        let eng = RoutineEngine::new(7, &[(Arc::new(spec()), Arc::clone(&probe))]);
        (eng, probe)
    }

    fn minter() -> impl FnMut(ActuatorId, CommandKind) -> Command {
        let mut seq = 0u64;
        move |actuator, kind| {
            let cmd = Command::new(
                CommandId::new(ProcessId(0), OperatorId(0), seq),
                actuator,
                kind,
                Time::ZERO,
            );
            seq += 1;
            cmd
        }
    }

    #[test]
    fn full_commit_cycle_chains_and_verifies() {
        let (mut eng, probe) = engine();
        let plan = eng
            .trigger(RoutineId(1), Time::from_secs(1), minter())
            .expect("staged");
        assert_eq!(plan.stages.len(), 2);
        assert_eq!(eng.inflight_count(), 1);
        assert!(matches!(
            eng.on_stage_ack(RoutineId(1), plan.instance, 0, true, Time::from_secs(1)),
            AckOutcome::Ignored
        ));
        let AckOutcome::Commit { targets, .. } =
            eng.on_stage_ack(RoutineId(1), plan.instance, 1, true, Time::from_secs(1))
        else {
            panic!("expected commit after last ack");
        };
        assert_eq!(targets, vec![ActuatorId(0), ActuatorId(1)]);
        assert_eq!(eng.inflight_count(), 0);
        assert_eq!(probe.committed(), 1);
        let trail = LedgerVerifier::verify(7, eng.entries()).expect("chain intact");
        assert_eq!(trail.len(), 2);
    }

    #[test]
    fn refused_stage_aborts_with_compensation() {
        let (mut eng, probe) = engine();
        let plan = eng
            .trigger(RoutineId(1), Time::ZERO, minter())
            .expect("staged");
        let AckOutcome::Abort(abort) =
            eng.on_stage_ack(RoutineId(1), plan.instance, 1, false, Time::ZERO)
        else {
            panic!("expected abort on refusal");
        };
        assert_eq!(
            abort.compensations,
            vec![(
                ActuatorId(1),
                CommandKind::Set(ActuationState::Switch(false))
            )]
        );
        assert_eq!(probe.aborted(), 1);
        let entry = eng.record_compensated(RoutineId(1), plan.instance, Time::ZERO, vec![]);
        assert_eq!(entry.transition, RoutineTransition::Compensated);
        assert_eq!(probe.compensated(), 1);
        LedgerVerifier::verify(7, eng.entries()).expect("chain intact");
    }

    #[test]
    fn timeout_aborts_once() {
        let (mut eng, _) = engine();
        let plan = eng
            .trigger(RoutineId(1), Time::ZERO, minter())
            .expect("staged");
        assert!(eng.on_timeout(plan.instance, Time::from_secs(2)).is_some());
        assert!(
            eng.on_timeout(plan.instance, Time::from_secs(2)).is_none(),
            "second timeout is a no-op"
        );
        // A straggling ack after the abort is ignored.
        assert!(matches!(
            eng.on_stage_ack(RoutineId(1), plan.instance, 0, true, Time::from_secs(2)),
            AckOutcome::Ignored
        ));
    }

    #[test]
    fn recover_reaborts_staged_and_recommits_committed() {
        let (mut eng, _) = engine();
        // Instance 0 commits; instance 1 is left staged (simulated
        // crash before acks).
        let p0 = eng
            .trigger(RoutineId(1), Time::ZERO, minter())
            .expect("staged");
        let _ = eng.on_stage_ack(RoutineId(1), p0.instance, 0, true, Time::ZERO);
        let _ = eng.on_stage_ack(RoutineId(1), p0.instance, 1, true, Time::ZERO);
        let _p1 = eng
            .trigger(RoutineId(1), Time::ZERO, minter())
            .expect("staged");
        let entries = eng.entries().to_vec();

        let probe = RoutineProbe::new();
        let mut recovered = RoutineEngine::new(7, &[(Arc::new(spec()), probe)]);
        let actions = recovered.recover(&entries, Time::from_secs(5));
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            &actions[0],
            RecoveryAction::Recommit { instance: 0, .. }
        ));
        let RecoveryAction::AbortStaged(abort) = &actions[1] else {
            panic!("staged instance must abort");
        };
        assert_eq!(abort.instance, 1);
        assert_eq!(abort.compensations.len(), 1);
        // The freshly appended Aborted entry extends the recovered
        // chain and still verifies end to end.
        let trail = LedgerVerifier::verify(7, recovered.entries()).expect("chain intact");
        assert_eq!(trail.len(), entries.len() + 1);
        // Instance numbering resumes beyond everything recovered.
        let next = recovered
            .trigger(RoutineId(1), Time::from_secs(6), minter())
            .expect("staged");
        assert_eq!(next.instance, 2);
    }

    #[test]
    fn unknown_routine_does_not_stage() {
        let (mut eng, _) = engine();
        assert!(eng.trigger(RoutineId(99), Time::ZERO, minter()).is_none());
        assert!(eng.entries().is_empty());
    }

    #[test]
    fn probe_instances_track_final_state() {
        let (mut eng, probe) = engine();
        let plan = eng
            .trigger(RoutineId(1), Time::ZERO, minter())
            .expect("staged");
        let _ = eng.on_stage_ack(RoutineId(1), plan.instance, 0, true, Time::ZERO);
        let _ = eng.on_stage_ack(RoutineId(1), plan.instance, 1, true, Time::ZERO);
        let instances = probe.instances();
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].state, RoutineTransition::Committed);
        assert_eq!(instances[0].commands.len(), 2);
    }
}
