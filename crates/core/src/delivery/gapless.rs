//! The Gapless ring protocol (§4.1).
//!
//! Gapless delivery guarantees that any event received from a sensor by
//! any correct process is eventually delivered to, and processed by,
//! interested applications. Rivulet achieves this optimistically: a
//! light-weight **ring** circulates each event once around the local
//! views (n messages instead of the O(m·n) of broadcasting from every
//! receiving process), and only when the ring detects trouble does the
//! protocol fall back to reliable broadcast.
//!
//! The ring message is the paper's `(e : S : V)` triple — the event,
//! the processes that have *seen* it, and the processes that *need* it.
//! The fallback trigger is exactly the paper's condition: a process
//! that receives an event it has already seen, with `S ≠ V` and itself
//! in `S`, knows the ring stalled before covering `V`, and broadcasts.

use rivulet_types::{Event, ProcessId, SensorId};

use crate::messages::ProcMsg;
use crate::store::EventStore;

use super::Action;

/// Outcome of processing one Gapless input.
#[derive(Debug, Default)]
pub struct GaplessOutcome {
    /// Effects to apply (sends, local delivery).
    pub actions: Vec<Action>,
    /// If set, the caller must initiate reliable broadcast of this
    /// event (the ring detected a stall).
    pub start_broadcast: Option<Event>,
}

/// One process's Gapless protocol state.
#[derive(Debug)]
pub struct GaplessState {
    me: ProcessId,
    store: EventStore,
    /// The successor we last synchronized with; a change triggers
    /// Bayou-style anti-entropy (§4.1).
    synced_successor: Option<ProcessId>,
    anti_entropy: bool,
}

impl GaplessState {
    /// Creates Gapless state for process `me` with a single-shard
    /// store (the original flat layout; tests and simple harnesses).
    #[must_use]
    pub fn new(me: ProcessId, store_cap_per_sensor: usize, anti_entropy: bool) -> Self {
        Self::new_sharded(me, store_cap_per_sensor, 1, anti_entropy)
    }

    /// Creates Gapless state whose replicated store is sharded by
    /// sensor ([`EventStore::with_shards`]); processes size this from
    /// `RivuletConfig::store_shards`.
    #[must_use]
    pub fn new_sharded(
        me: ProcessId,
        store_cap_per_sensor: usize,
        store_shards: usize,
        anti_entropy: bool,
    ) -> Self {
        Self {
            me,
            store: EventStore::with_shards(store_cap_per_sensor, store_shards),
            synced_successor: None,
            anti_entropy,
        }
    }

    /// Read access to the replicated event store.
    #[must_use]
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// Mutable access to the replicated event store (watermark GC).
    pub fn store_mut(&mut self) -> &mut EventStore {
        &mut self.store
    }

    /// Whether this process has seen `event` (used by polling
    /// cancellation and tests).
    #[must_use]
    pub fn seen(&self, event: &Event) -> bool {
        self.store.seen(event.id)
    }

    /// Highest sequence stored for `sensor`.
    #[must_use]
    pub fn watermark(&self, sensor: SensorId) -> Option<u64> {
        self.store.watermark(sensor)
    }

    /// An event arrived directly from the physical sensor at this
    /// process (via an adapter). `view` is the local view `vᵢ` and
    /// `successor` the ring successor (None when alone).
    pub fn on_local_ingest(
        &mut self,
        event: Event,
        view: &[ProcessId],
        successor: Option<ProcessId>,
    ) -> GaplessOutcome {
        let mut out = GaplessOutcome::default();
        if !self.store.insert(event.clone()) {
            // Already known (e.g. the ring beat the radio): nothing to do.
            return out;
        }
        out.actions.push(Action::Deliver {
            event: event.clone(),
        });
        if let Some(succ) = successor {
            out.actions.push(Action::Send {
                to: succ,
                msg: ProcMsg::Ring {
                    event,
                    seen: vec![self.me],
                    need: view.to_vec(),
                },
            });
        }
        out
    }

    /// A ring message `(event : seen : need)` arrived from a peer.
    pub fn on_ring(
        &mut self,
        event: Event,
        seen: Vec<ProcessId>,
        need: Vec<ProcessId>,
        view: &[ProcessId],
        successor: Option<ProcessId>,
    ) -> GaplessOutcome {
        let mut out = GaplessOutcome::default();
        if self.store.insert(event.clone()) {
            // First sighting: deliver locally and keep the ring moving,
            // extending S with ourselves and V with our own view.
            out.actions.push(Action::Deliver {
                event: event.clone(),
            });
            if let Some(succ) = successor {
                let mut new_seen = seen;
                if !new_seen.contains(&self.me) {
                    new_seen.push(self.me);
                }
                new_seen.sort_unstable();
                let mut new_need = need;
                for p in view {
                    if !new_need.contains(p) {
                        new_need.push(*p);
                    }
                }
                new_need.sort_unstable();
                out.actions.push(Action::Send {
                    to: succ,
                    msg: ProcMsg::Ring {
                        event,
                        seen: new_seen,
                        need: new_need,
                    },
                });
            }
            return out;
        }
        // Already seen. The paper's stall test: S ≠ V and me ∈ S means
        // we forwarded this event before, yet it has not reached every
        // process some view said it should — fall back to broadcast.
        let mut seen_sorted = seen;
        seen_sorted.sort_unstable();
        let mut need_sorted = need;
        need_sorted.sort_unstable();
        if seen_sorted != need_sorted && seen_sorted.contains(&self.me) {
            out.start_broadcast = Some(event);
        }
        out
    }

    /// A reliable-broadcast copy of an event arrived. Returns delivery
    /// action if it was new; the caller separately acks the origin.
    pub fn on_broadcast_copy(&mut self, event: Event) -> Option<Action> {
        if self.store.insert(event.clone()) {
            Some(Action::Deliver { event })
        } else {
            None
        }
    }

    /// The ring successor changed (membership view update). Returns the
    /// sync request to send, if anti-entropy is enabled and the
    /// successor is new.
    pub fn on_successor_change(&mut self, successor: Option<ProcessId>) -> Option<Action> {
        if self.synced_successor == successor {
            return None;
        }
        self.synced_successor = successor;
        let succ = successor?;
        if !self.anti_entropy {
            return None;
        }
        Some(Action::Send {
            to: succ,
            msg: ProcMsg::SyncRequest { from: self.me },
        })
    }

    /// A peer asked for our per-sensor watermarks.
    #[must_use]
    pub fn on_sync_request(&self, from: ProcessId) -> Action {
        Action::Send {
            to: from,
            msg: ProcMsg::SyncReply {
                from: self.me,
                watermarks: self.store.watermarks(),
            },
        }
    }

    /// The successor replied with its watermarks; ship it everything it
    /// is missing (nothing to send returns `None`).
    #[must_use]
    pub fn on_sync_reply(&self, from: ProcessId, watermarks: &[(SensorId, u64)]) -> Option<Action> {
        let diff = self.store.diff_for(watermarks);
        if diff.is_empty() {
            return None;
        }
        Some(Action::Send {
            to: from,
            msg: ProcMsg::SyncEvents { events: diff },
        })
    }

    /// Missing events arrived from a predecessor's sync. New ones are
    /// delivered locally (they do not re-enter the ring: the sender is
    /// responsible for its own successor chain).
    pub fn on_sync_events(&mut self, events: Vec<Event>) -> Vec<Action> {
        let mut actions = Vec::new();
        for event in events {
            if self.store.insert(event.clone()) {
                actions.push(Action::Deliver { event });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventId, EventKind, Time};

    fn ev(seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(7), seq),
            EventKind::Motion,
            Time::from_millis(seq),
        )
    }

    fn pids(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    fn deliver_count(actions: &[Action]) -> usize {
        actions
            .iter()
            .filter(|a| matches!(a, Action::Deliver { .. }))
            .count()
    }

    #[test]
    fn local_ingest_delivers_and_forwards_to_successor() {
        let mut g = GaplessState::new(ProcessId(0), 100, true);
        let view = pids(&[0, 1, 2]);
        let out = g.on_local_ingest(ev(0), &view, Some(ProcessId(1)));
        assert!(out.start_broadcast.is_none());
        assert_eq!(deliver_count(&out.actions), 1);
        match &out.actions[1] {
            Action::Send {
                to,
                msg: ProcMsg::Ring { seen, need, .. },
            } => {
                assert_eq!(*to, ProcessId(1));
                assert_eq!(*seen, pids(&[0]));
                assert_eq!(*need, view);
            }
            other => panic!("expected ring send, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_local_ingest_is_silent() {
        let mut g = GaplessState::new(ProcessId(0), 100, true);
        let view = pids(&[0, 1]);
        let _ = g.on_local_ingest(ev(0), &view, Some(ProcessId(1)));
        let out = g.on_local_ingest(ev(0), &view, Some(ProcessId(1)));
        assert!(out.actions.is_empty());
        assert!(out.start_broadcast.is_none());
    }

    #[test]
    fn singleton_home_just_delivers() {
        let mut g = GaplessState::new(ProcessId(0), 100, true);
        let out = g.on_local_ingest(ev(0), &pids(&[0]), None);
        assert_eq!(deliver_count(&out.actions), 1);
        assert_eq!(out.actions.len(), 1, "no sends when alone");
    }

    #[test]
    fn ring_extends_seen_and_need_and_forwards() {
        let mut g = GaplessState::new(ProcessId(1), 100, true);
        // p1's view knows p3, which the sender's view did not.
        let view = pids(&[0, 1, 3]);
        let out = g.on_ring(ev(0), pids(&[0]), pids(&[0, 1]), &view, Some(ProcessId(3)));
        assert_eq!(deliver_count(&out.actions), 1);
        match &out.actions[1] {
            Action::Send {
                to,
                msg: ProcMsg::Ring { seen, need, .. },
            } => {
                assert_eq!(*to, ProcessId(3));
                assert_eq!(*seen, pids(&[0, 1]));
                assert_eq!(*need, pids(&[0, 1, 3]), "need extended with our view");
            }
            other => panic!("expected ring send, got {other:?}"),
        }
    }

    #[test]
    fn completed_ring_is_ignored() {
        // p0 ingests, then receives its own event back with S == V.
        let mut g = GaplessState::new(ProcessId(0), 100, true);
        let view = pids(&[0, 1, 2]);
        let _ = g.on_local_ingest(ev(0), &view, Some(ProcessId(1)));
        let out = g.on_ring(ev(0), view.clone(), view.clone(), &view, Some(ProcessId(1)));
        assert!(out.actions.is_empty());
        assert!(out.start_broadcast.is_none(), "S == V means all covered");
    }

    #[test]
    fn stalled_ring_triggers_broadcast() {
        // Paper's condition: seen event again, S != V, me ∈ S.
        let mut g = GaplessState::new(ProcessId(0), 100, true);
        let view = pids(&[0, 1, 2]);
        let _ = g.on_local_ingest(ev(0), &view, Some(ProcessId(1)));
        let out = g.on_ring(
            ev(0),
            pids(&[0, 1]),
            pids(&[0, 1, 2]),
            &view,
            Some(ProcessId(1)),
        );
        assert_eq!(out.start_broadcast, Some(ev(0)));
    }

    #[test]
    fn seen_event_not_in_seen_set_is_ignored() {
        // A duplicate receipt where we are NOT in S (we ingested from
        // the sensor but never forwarded this ring copy): another
        // process's ring is still progressing — do not broadcast.
        let mut g = GaplessState::new(ProcessId(2), 100, true);
        let view = pids(&[0, 1, 2]);
        let _ = g.on_local_ingest(ev(0), &view, Some(ProcessId(0)));
        let out = g.on_ring(
            ev(0),
            pids(&[0, 1]),
            pids(&[0, 1, 2]),
            &view,
            Some(ProcessId(0)),
        );
        assert!(out.start_broadcast.is_none());
        assert!(out.actions.is_empty());
    }

    #[test]
    fn three_process_ring_full_cycle_no_failures() {
        // End-to-end hand simulation: sensor → p0 only; verify everyone
        // delivers exactly once with exactly n ring messages.
        let view = pids(&[0, 1, 2]);
        let mut p0 = GaplessState::new(ProcessId(0), 100, true);
        let mut p1 = GaplessState::new(ProcessId(1), 100, true);
        let mut p2 = GaplessState::new(ProcessId(2), 100, true);

        let out0 = p0.on_local_ingest(ev(0), &view, Some(ProcessId(1)));
        let Action::Send {
            msg: ProcMsg::Ring { event, seen, need },
            ..
        } = out0.actions[1].clone()
        else {
            panic!()
        };
        let out1 = p1.on_ring(event, seen, need, &view, Some(ProcessId(2)));
        let Action::Send {
            msg: ProcMsg::Ring { event, seen, need },
            ..
        } = out1.actions[1].clone()
        else {
            panic!()
        };
        let out2 = p2.on_ring(event, seen, need, &view, Some(ProcessId(0)));
        let Action::Send {
            msg: ProcMsg::Ring { event, seen, need },
            to,
        } = out2.actions[1].clone()
        else {
            panic!()
        };
        assert_eq!(to, ProcessId(0));
        // Ring returns to p0: S == V == {0,1,2} → silent completion.
        let back = p0.on_ring(event, seen, need, &view, Some(ProcessId(1)));
        assert!(back.actions.is_empty());
        assert!(back.start_broadcast.is_none());
        assert!(p0.seen(&ev(0)) && p1.seen(&ev(0)) && p2.seen(&ev(0)));
    }

    #[test]
    fn multi_receiver_rings_do_not_broadcast() {
        // Both p0 and p1 receive the event from the sensor (multicast)
        // and start rings; no false broadcast should fire.
        let view = pids(&[0, 1, 2]);
        let mut p0 = GaplessState::new(ProcessId(0), 100, true);
        let mut p1 = GaplessState::new(ProcessId(1), 100, true);
        let mut p2 = GaplessState::new(ProcessId(2), 100, true);

        let o0 = p0.on_local_ingest(ev(0), &view, Some(ProcessId(1)));
        let o1 = p1.on_local_ingest(ev(0), &view, Some(ProcessId(2)));
        // p1 receives p0's ring copy: already seen, S={0}, p1 ∉ S → ignore.
        let Action::Send {
            msg: ProcMsg::Ring { event, seen, need },
            ..
        } = o0.actions[1].clone()
        else {
            panic!()
        };
        let r = p1.on_ring(event, seen, need, &view, Some(ProcessId(2)));
        assert!(r.start_broadcast.is_none());
        // p2 receives p1's ring copy: new → delivers, forwards to p0.
        let Action::Send {
            msg: ProcMsg::Ring { event, seen, need },
            ..
        } = o1.actions[1].clone()
        else {
            panic!()
        };
        let r2 = p2.on_ring(event, seen, need, &view, Some(ProcessId(0)));
        assert_eq!(deliver_count(&r2.actions), 1);
        // p0 gets it back: S={1,2}≠V, p0 ∉ S → ignore (no broadcast).
        let Action::Send {
            msg: ProcMsg::Ring { event, seen, need },
            ..
        } = r2.actions[1].clone()
        else {
            panic!()
        };
        let r3 = p0.on_ring(event, seen, need, &view, Some(ProcessId(1)));
        assert!(r3.start_broadcast.is_none());
        assert!(p2.seen(&ev(0)));
    }

    #[test]
    fn sync_handshake_ships_missing_events() {
        let mut ahead = GaplessState::new(ProcessId(0), 100, true);
        let view = pids(&[0, 1]);
        for seq in 0..5 {
            let _ = ahead.on_local_ingest(ev(seq), &view, None);
        }
        let mut behind = GaplessState::new(ProcessId(1), 100, true);
        let _ = behind.on_local_ingest(ev(0), &view, None);

        // New successor appears → ahead asks for watermarks.
        let req = ahead.on_successor_change(Some(ProcessId(1)));
        assert!(matches!(
            req,
            Some(Action::Send {
                to: ProcessId(1),
                msg: ProcMsg::SyncRequest { .. }
            })
        ));
        // behind replies with watermarks.
        let Action::Send {
            msg: ProcMsg::SyncReply { watermarks, .. },
            ..
        } = behind.on_sync_request(ProcessId(0))
        else {
            panic!()
        };
        assert_eq!(watermarks, vec![(SensorId(7), 0)]);
        // ahead ships the diff.
        let Some(Action::Send {
            msg: ProcMsg::SyncEvents { events },
            ..
        }) = ahead.on_sync_reply(ProcessId(1), &watermarks)
        else {
            panic!("expected sync events")
        };
        assert_eq!(events.len(), 4);
        // behind ingests and delivers each new event.
        let delivered = behind.on_sync_events(events);
        assert_eq!(delivered.len(), 4);
        assert_eq!(behind.watermark(SensorId(7)), Some(4));
    }

    #[test]
    fn successor_change_dedup_and_anti_entropy_toggle() {
        let mut g = GaplessState::new(ProcessId(0), 100, true);
        assert!(g.on_successor_change(Some(ProcessId(1))).is_some());
        assert!(
            g.on_successor_change(Some(ProcessId(1))).is_none(),
            "same successor"
        );
        assert!(g.on_successor_change(None).is_none());
        assert!(
            g.on_successor_change(Some(ProcessId(1))).is_some(),
            "re-sync after churn"
        );

        let mut off = GaplessState::new(ProcessId(0), 100, false);
        assert!(
            off.on_successor_change(Some(ProcessId(1))).is_none(),
            "ablation: no sync"
        );
    }

    #[test]
    fn sync_reply_with_nothing_missing_sends_nothing() {
        let g = GaplessState::new(ProcessId(0), 100, true);
        assert!(g.on_sync_reply(ProcessId(1), &[]).is_none());
    }

    #[test]
    fn broadcast_copy_dedups() {
        let mut g = GaplessState::new(ProcessId(0), 100, true);
        assert!(g.on_broadcast_copy(ev(0)).is_some());
        assert!(g.on_broadcast_copy(ev(0)).is_none());
    }
}
