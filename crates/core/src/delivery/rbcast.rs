//! Reliable broadcast — the Gapless fallback (§4.1).
//!
//! When the ring detects that an event stalled before reaching every
//! process, the detecting process floods it: send to every peer in the
//! local view and retransmit until each acknowledges or leaves the
//! view. Receivers that see the event for the first time re-broadcast
//! once themselves (eager reliable broadcast in the crash-recovery
//! model, after Boichat & Guerraoui), which tolerates the origin
//! crashing mid-broadcast.

use std::collections::{BTreeMap, BTreeSet};

use rivulet_types::{Event, EventId, ProcessId, SensorId};

use crate::messages::ProcMsg;

use super::Action;

/// One process's reliable-broadcast state.
#[derive(Debug)]
pub struct RbcastState {
    me: ProcessId,
    /// Broadcasts this process originated (or relayed) that still await
    /// acknowledgements. Ordered so retransmission order is a pure
    /// function of protocol state (determinism).
    pending: BTreeMap<EventId, PendingBroadcast>,
    /// Events this process has already relayed, to bound re-flooding.
    relayed: BTreeSet<EventId>,
}

#[derive(Debug)]
struct PendingBroadcast {
    event: Event,
    unacked: BTreeSet<ProcessId>,
}

impl RbcastState {
    /// Creates broadcast state for process `me`.
    #[must_use]
    pub fn new(me: ProcessId) -> Self {
        Self {
            me,
            pending: BTreeMap::new(),
            relayed: BTreeSet::new(),
        }
    }

    /// Number of broadcasts still awaiting acknowledgements.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Initiates (or re-initiates) a broadcast of `event` to every peer
    /// in `view` except `me`, as a single encode-once fan-out action.
    pub fn start(&mut self, event: Event, view: &[ProcessId]) -> Vec<Action> {
        let peers: BTreeSet<ProcessId> = view.iter().copied().filter(|p| *p != self.me).collect();
        if peers.is_empty() {
            return Vec::new();
        }
        self.relayed.insert(event.id);
        let actions = vec![Action::Fanout {
            to: peers.iter().copied().collect(),
            msg: ProcMsg::Broadcast {
                event: event.clone(),
                origin: self.me,
            },
        }];
        self.pending.insert(
            event.id,
            PendingBroadcast {
                event,
                unacked: peers,
            },
        );
        actions
    }

    /// A broadcast copy arrived. With `eager_ack` (the `PerEvent` ack
    /// mode) the origin gets an immediate `BroadcastAck`; otherwise the
    /// receipt is acknowledged cumulatively by the *received* watermark
    /// on our next keep-alive beacon. Either way, if `was_new` and not
    /// already relayed, a relay flood of our own makes delivery survive
    /// origin crashes.
    pub fn on_broadcast(
        &mut self,
        event: &Event,
        origin: ProcessId,
        was_new: bool,
        view: &[ProcessId],
        eager_ack: bool,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        if eager_ack {
            actions.push(Action::Send {
                to: origin,
                msg: ProcMsg::BroadcastAck {
                    id: event.id,
                    from: self.me,
                },
            });
        }
        if was_new && !self.relayed.contains(&event.id) {
            actions.extend(self.start(event.clone(), view));
        }
        actions
    }

    /// A peer acknowledged one of our broadcasts.
    pub fn on_ack(&mut self, id: EventId, from: ProcessId) {
        if let Some(p) = self.pending.get_mut(&id) {
            p.unacked.remove(&from);
            if p.unacked.is_empty() {
                self.pending.remove(&id);
            }
        }
    }

    /// A peer's cumulative *received* watermarks arrived (piggybacked
    /// on its keep-alive). Every pending broadcast whose event is
    /// covered by the peer's watermark is acknowledged at once — one
    /// beacon retires arbitrarily many per-event acks. Returns how many
    /// pending entries this ack retired for `from`.
    ///
    /// Retirement is by *highest received* seq, consistent with the
    /// Bayou-style sync the store already implements: anti-entropy
    /// never back-fills below a peer's watermark, so retransmitting
    /// below it could never terminate and acking it loses nothing.
    pub fn on_cumulative_ack(&mut self, from: ProcessId, received: &[(SensorId, u64)]) -> usize {
        if self.pending.is_empty() || received.is_empty() {
            return 0;
        }
        let mut retired = 0;
        self.pending.retain(|id, p| {
            let covered = received
                .iter()
                .any(|(sensor, wm)| *sensor == id.sensor && id.seq <= *wm);
            if covered && p.unacked.remove(&from) {
                retired += 1;
            }
            !p.unacked.is_empty()
        });
        retired
    }

    /// Periodic retransmission tick: re-send pending broadcasts to
    /// still-unacked peers that remain in the view; peers that left the
    /// view are written off (they will recover via anti-entropy). Each
    /// pending event becomes one fan-out action to its unacked peers.
    pub fn on_tick(&mut self, view: &[ProcessId]) -> Vec<Action> {
        let mut actions = Vec::new();
        let me = self.me;
        self.pending.retain(|_, p| {
            p.unacked.retain(|peer| view.contains(peer));
            if p.unacked.is_empty() {
                return false;
            }
            actions.push(Action::Fanout {
                to: p.unacked.iter().copied().collect(),
                msg: ProcMsg::Broadcast {
                    event: p.event.clone(),
                    origin: me,
                },
            });
            true
        });
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventKind, SensorId, Time};

    fn ev(seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(1), seq),
            EventKind::DoorOpen,
            Time::from_millis(seq),
        )
    }

    fn pids(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    fn send_targets(actions: &[Action]) -> Vec<ProcessId> {
        actions
            .iter()
            .flat_map(|a| match a {
                Action::Send {
                    to,
                    msg: ProcMsg::Broadcast { .. },
                } => vec![*to],
                Action::Fanout {
                    to,
                    msg: ProcMsg::Broadcast { .. },
                } => to.clone(),
                _ => Vec::new(),
            })
            .collect()
    }

    #[test]
    fn start_floods_view_except_self() {
        let mut b = RbcastState::new(ProcessId(0));
        let actions = b.start(ev(0), &pids(&[0, 1, 2]));
        assert_eq!(send_targets(&actions), pids(&[1, 2]));
        assert_eq!(b.pending_count(), 1);
    }

    #[test]
    fn acks_retire_pending() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1, 2]));
        b.on_ack(ev(0).id, ProcessId(1));
        assert_eq!(b.pending_count(), 1);
        b.on_ack(ev(0).id, ProcessId(2));
        assert_eq!(b.pending_count(), 0);
        // Late/duplicate acks are harmless.
        b.on_ack(ev(0).id, ProcessId(2));
    }

    #[test]
    fn tick_retransmits_only_unacked_live_peers() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1, 2, 3]));
        b.on_ack(ev(0).id, ProcessId(1));
        // p3 left the view: written off.
        let actions = b.on_tick(&pids(&[0, 1, 2]));
        assert_eq!(send_targets(&actions), pids(&[2]));
        // Everyone relevant acked or gone → pending clears.
        b.on_ack(ev(0).id, ProcessId(2));
        assert_eq!(b.pending_count(), 0);
        assert!(b.on_tick(&pids(&[0, 1, 2])).is_empty());
    }

    #[test]
    fn all_peers_departed_clears_pending() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1]));
        let actions = b.on_tick(&pids(&[0]));
        assert!(actions.is_empty());
        assert_eq!(b.pending_count(), 0);
    }

    #[test]
    fn receiver_acks_and_relays_new_events_once() {
        let mut b = RbcastState::new(ProcessId(1));
        let view = pids(&[0, 1, 2]);
        let actions = b.on_broadcast(&ev(0), ProcessId(0), true, &view, true);
        // First action: ack to origin.
        assert!(matches!(
            actions[0],
            Action::Send {
                to: ProcessId(0),
                msg: ProcMsg::BroadcastAck { .. }
            }
        ));
        // Relay flood to peers.
        assert_eq!(send_targets(&actions), pids(&[0, 2]));
        // Second receipt: ack only, no re-relay.
        let again = b.on_broadcast(&ev(0), ProcessId(2), false, &view, true);
        assert_eq!(again.len(), 1);
        assert!(matches!(
            again[0],
            Action::Send {
                to: ProcessId(2),
                msg: ProcMsg::BroadcastAck { .. }
            }
        ));
    }

    #[test]
    fn known_event_not_relayed() {
        let mut b = RbcastState::new(ProcessId(1));
        let view = pids(&[0, 1, 2]);
        let actions = b.on_broadcast(&ev(0), ProcessId(0), false, &view, true);
        assert_eq!(actions.len(), 1, "ack only for already-known events");
    }

    #[test]
    fn cumulative_mode_skips_eager_ack_but_still_relays() {
        let mut b = RbcastState::new(ProcessId(1));
        let view = pids(&[0, 1, 2]);
        let actions = b.on_broadcast(&ev(0), ProcessId(0), true, &view, false);
        assert!(
            !actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: ProcMsg::BroadcastAck { .. },
                    ..
                }
            )),
            "no per-event ack in cumulative mode"
        );
        assert_eq!(send_targets(&actions), pids(&[0, 2]), "relay still floods");
    }

    #[test]
    fn cumulative_ack_retires_all_covered_events() {
        let mut b = RbcastState::new(ProcessId(0));
        let view = pids(&[0, 1, 2]);
        for seq in 0..4 {
            let _ = b.start(ev(seq), &view);
        }
        assert_eq!(b.pending_count(), 4);
        // Peer 1's beacon covers seqs 0..=2 in one message.
        assert_eq!(b.on_cumulative_ack(ProcessId(1), &[(SensorId(1), 2)]), 3);
        assert_eq!(b.pending_count(), 4, "peer 2 still unacked everywhere");
        assert_eq!(b.on_cumulative_ack(ProcessId(2), &[(SensorId(1), 2)]), 3);
        assert_eq!(b.pending_count(), 1, "only seq 3 outstanding");
        // Watermark below remaining seq retires nothing; other sensors
        // are ignored.
        assert_eq!(b.on_cumulative_ack(ProcessId(1), &[(SensorId(9), 100)]), 0);
        assert_eq!(b.on_cumulative_ack(ProcessId(1), &[(SensorId(1), 3)]), 1);
        assert_eq!(b.on_cumulative_ack(ProcessId(2), &[(SensorId(1), 3)]), 1);
        assert_eq!(b.pending_count(), 0);
    }

    #[test]
    fn retransmissions_are_ordered_fanouts() {
        let mut b = RbcastState::new(ProcessId(0));
        let view = pids(&[0, 1, 2]);
        let _ = b.start(ev(1), &view);
        let _ = b.start(ev(0), &view);
        let actions = b.on_tick(&view);
        // One fan-out per pending event, in EventId order.
        let seqs: Vec<u64> = actions
            .iter()
            .map(|a| match a {
                Action::Fanout {
                    msg: ProcMsg::Broadcast { event, .. },
                    ..
                } => event.id.seq,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn singleton_start_is_noop() {
        let mut b = RbcastState::new(ProcessId(0));
        assert!(b.start(ev(0), &pids(&[0])).is_empty());
        assert_eq!(b.pending_count(), 0);
    }
}
