//! Reliable broadcast — the Gapless fallback (§4.1) — and replication
//! tracking for broadcast-free paths.
//!
//! When the ring detects that an event stalled before reaching every
//! process, the detecting process floods it: send to every peer in the
//! local view and retransmit until each acknowledges or leaves the
//! view. Receivers that see the event for the first time re-broadcast
//! once themselves (eager reliable broadcast in the crash-recovery
//! model, after Boichat & Guerraoui), which tolerates the origin
//! crashing mid-broadcast.
//!
//! Beyond the flood fallback, the same pending machinery tracks
//! *ring-origin replication* ([`RbcastState::track`]): the ingesting
//! process registers every fresh event against its peers without
//! sending anything extra (the ring itself carries the event), and the
//! peers' cumulative *received* watermarks — piggybacked on their
//! keep-alive beacons — retire the entries. An entry that outlives its
//! grace period means the ring (plus anti-entropy) silently failed to
//! replicate the event, and the origin falls back to a flood. This
//! closes the window where a ring message dies on a crashed hop and no
//! surviving process ever meets the paper's stall condition.
//!
//! The pending map is sharded by sensor: cumulative acks retire one
//! `seq <= watermark` range per sensor instead of scanning every
//! pending broadcast, so retirement cost tracks the events actually
//! covered rather than the total backlog.

use std::collections::{BTreeMap, BTreeSet};

use rivulet_types::{Duration, Event, EventId, ProcessId, SensorId, Time};

use crate::messages::ProcMsg;

use super::Action;

/// One process's reliable-broadcast state.
#[derive(Debug)]
pub struct RbcastState {
    me: ProcessId,
    /// Broadcasts this process originated (or relayed) and ring-origin
    /// replication entries that still await acknowledgements, sharded
    /// by sensor. Ordered so retransmission order is a pure function of
    /// protocol state (determinism).
    pending: BTreeMap<SensorId, BTreeMap<u64, PendingBroadcast>>,
    /// Total entries across all sensors (kept so `pending_count` stays
    /// O(1) despite the sharding).
    n_pending: usize,
    /// Events this process has already relayed, to bound re-flooding.
    /// Sharded like `pending` so watermark GC prunes it by range.
    relayed: BTreeMap<SensorId, BTreeSet<u64>>,
    /// Pause before re-flooding an explicit broadcast.
    retransmit_after: Duration,
    /// Pause before a tracked (ring-origin) entry escalates to a flood;
    /// sized so that healthy keep-alive retirement always wins.
    track_grace: Duration,
}

#[derive(Debug)]
struct PendingBroadcast {
    event: Event,
    unacked: BTreeSet<ProcessId>,
    /// Do not retransmit before this instant (age guard: cumulative
    /// retirement via keep-alives must get a chance first).
    retransmit_at: Time,
}

impl RbcastState {
    /// Creates broadcast state for process `me` with zero retransmit
    /// delays (every tick retransmits — the eager behaviour unit tests
    /// rely on). Production callers use [`RbcastState::with_timing`].
    #[must_use]
    pub fn new(me: ProcessId) -> Self {
        Self {
            me,
            pending: BTreeMap::new(),
            n_pending: 0,
            relayed: BTreeMap::new(),
            retransmit_after: Duration::ZERO,
            track_grace: Duration::ZERO,
        }
    }

    /// Sets the retransmission pacing: `retransmit_after` between flood
    /// retries, `track_grace` before a tracked ring-origin entry first
    /// escalates to a flood.
    #[must_use]
    pub fn with_timing(mut self, retransmit_after: Duration, track_grace: Duration) -> Self {
        self.retransmit_after = retransmit_after;
        self.track_grace = track_grace;
        self
    }

    /// Number of broadcasts still awaiting acknowledgements.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.n_pending
    }

    fn insert_pending(&mut self, event: Event, unacked: BTreeSet<ProcessId>, retransmit_at: Time) {
        let id = event.id;
        let prior = self.pending.entry(id.sensor).or_default().insert(
            id.seq,
            PendingBroadcast {
                event,
                unacked,
                retransmit_at,
            },
        );
        if prior.is_none() {
            self.n_pending += 1;
        }
    }

    /// Initiates (or re-initiates) a broadcast of `event` to every peer
    /// in `view` except `me`, as a single encode-once fan-out action.
    pub fn start(&mut self, event: Event, view: &[ProcessId], now: Time) -> Vec<Action> {
        let peers: BTreeSet<ProcessId> = view.iter().copied().filter(|p| *p != self.me).collect();
        if peers.is_empty() {
            return Vec::new();
        }
        self.relayed
            .entry(event.id.sensor)
            .or_default()
            .insert(event.id.seq);
        let actions = vec![Action::Fanout {
            to: peers.iter().copied().collect(),
            msg: ProcMsg::Broadcast {
                event: event.clone(),
                origin: self.me,
            },
        }];
        self.insert_pending(event, peers, now + self.retransmit_after);
        actions
    }

    /// Registers `event` for replication tracking *without* sending
    /// anything: the ring already carries it. Peers acknowledge through
    /// the received watermarks on their keep-alives; an entry still
    /// unacked after the track grace period is re-flooded by
    /// [`RbcastState::on_tick`] (the silent-stall fallback).
    pub fn track(&mut self, event: Event, view: &[ProcessId], now: Time) {
        if self
            .pending
            .get(&event.id.sensor)
            .is_some_and(|m| m.contains_key(&event.id.seq))
        {
            return; // already pending (e.g. an explicit flood)
        }
        let peers: BTreeSet<ProcessId> = view.iter().copied().filter(|p| *p != self.me).collect();
        if peers.is_empty() {
            return;
        }
        self.insert_pending(event, peers, now + self.track_grace);
    }

    /// A broadcast copy arrived. With `eager_ack` (the `PerEvent` ack
    /// mode) the origin gets an immediate `BroadcastAck`; otherwise the
    /// receipt is acknowledged cumulatively by the *received* watermark
    /// on our next keep-alive beacon. If `was_new` and not already
    /// relayed, a relay flood of our own makes delivery survive origin
    /// crashes (pass an empty `view` to suppress relaying — the eager
    /// baseline floods only from the origin).
    pub fn on_broadcast(
        &mut self,
        event: &Event,
        origin: ProcessId,
        was_new: bool,
        view: &[ProcessId],
        eager_ack: bool,
        now: Time,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        if eager_ack {
            actions.push(Action::Send {
                to: origin,
                msg: ProcMsg::BroadcastAck {
                    id: event.id,
                    from: self.me,
                },
            });
        }
        let already_relayed = self
            .relayed
            .get(&event.id.sensor)
            .is_some_and(|s| s.contains(&event.id.seq));
        if was_new && !already_relayed {
            actions.extend(self.start(event.clone(), view, now));
        }
        actions
    }

    fn remove_pending(&mut self, id: EventId) {
        if let Some(per) = self.pending.get_mut(&id.sensor) {
            if per.remove(&id.seq).is_some() {
                self.n_pending -= 1;
            }
            if per.is_empty() {
                self.pending.remove(&id.sensor);
            }
        }
    }

    /// A peer acknowledged one of our broadcasts.
    pub fn on_ack(&mut self, id: EventId, from: ProcessId) {
        let done = match self
            .pending
            .get_mut(&id.sensor)
            .and_then(|m| m.get_mut(&id.seq))
        {
            Some(p) => {
                p.unacked.remove(&from);
                p.unacked.is_empty()
            }
            None => false,
        };
        if done {
            self.remove_pending(id);
        }
    }

    /// A peer's cumulative *received* watermarks arrived (piggybacked
    /// on its keep-alive). Every pending broadcast whose event is
    /// covered by the peer's watermark is acknowledged at once — one
    /// beacon retires arbitrarily many per-event acks. Returns how many
    /// pending entries this ack retired for `from`.
    ///
    /// The pending shard for each sensor is scanned only up to the
    /// peer's watermark (`range(..=wm)`), so the cost is proportional
    /// to the entries actually covered, not the whole backlog.
    ///
    /// Retirement is by *highest received* seq, consistent with the
    /// Bayou-style sync the store already implements: anti-entropy
    /// never back-fills below a peer's watermark, so retransmitting
    /// below it could never terminate and acking it loses nothing.
    pub fn on_cumulative_ack(&mut self, from: ProcessId, received: &[(SensorId, u64)]) -> usize {
        if self.n_pending == 0 || received.is_empty() {
            return 0;
        }
        let mut retired = 0;
        for (sensor, wm) in received {
            let Some(per) = self.pending.get_mut(sensor) else {
                continue;
            };
            let mut done: Vec<u64> = Vec::new();
            for (seq, p) in per.range_mut(..=*wm) {
                if p.unacked.remove(&from) {
                    retired += 1;
                }
                if p.unacked.is_empty() {
                    done.push(*seq);
                }
            }
            for seq in done {
                per.remove(&seq);
                self.n_pending -= 1;
            }
            if per.is_empty() {
                self.pending.remove(sensor);
            }
        }
        retired
    }

    /// Periodic retransmission tick: re-send pending broadcasts that
    /// have passed their age guard to still-unacked peers that remain
    /// in the view; peers that left the view are written off (they will
    /// recover via anti-entropy). Each due event becomes one fan-out
    /// action to its unacked peers; entries still inside their guard
    /// are left untouched so cumulative keep-alive retirement can beat
    /// the retransmission.
    pub fn on_tick(&mut self, view: &[ProcessId], now: Time) -> Vec<Action> {
        let mut actions = Vec::new();
        let me = self.me;
        let retransmit_after = self.retransmit_after;
        let mut dropped = 0usize;
        for per in self.pending.values_mut() {
            per.retain(|_, p| {
                p.unacked.retain(|peer| view.contains(peer));
                if p.unacked.is_empty() {
                    dropped += 1;
                    return false;
                }
                if now >= p.retransmit_at {
                    p.retransmit_at = now + retransmit_after;
                    actions.push(Action::Fanout {
                        to: p.unacked.iter().copied().collect(),
                        msg: ProcMsg::Broadcast {
                            event: p.event.clone(),
                            origin: me,
                        },
                    });
                }
                true
            });
        }
        self.pending.retain(|_, per| !per.is_empty());
        self.n_pending -= dropped;
        actions
    }

    /// Forgets relay records for `sensor` at or below `upto`. Called
    /// alongside store watermark GC: events processed home-wide are
    /// never re-flooded, so their relay markers are dead weight.
    pub fn prune_relayed(&mut self, sensor: SensorId, upto: u64) {
        if let Some(set) = self.relayed.get_mut(&sensor) {
            *set = set.split_off(&(upto.saturating_add(1)));
            if set.is_empty() {
                self.relayed.remove(&sensor);
            }
        }
    }

    /// Number of relay markers currently retained (GC observability).
    #[must_use]
    pub fn relayed_count(&self) -> usize {
        self.relayed.values().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventKind, SensorId, Time};

    fn ev(seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(1), seq),
            EventKind::DoorOpen,
            Time::from_millis(seq),
        )
    }

    fn ev_on(sensor: u32, seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(sensor), seq),
            EventKind::DoorOpen,
            Time::from_millis(seq),
        )
    }

    fn pids(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    fn send_targets(actions: &[Action]) -> Vec<ProcessId> {
        actions
            .iter()
            .flat_map(|a| match a {
                Action::Send {
                    to,
                    msg: ProcMsg::Broadcast { .. },
                } => vec![*to],
                Action::Fanout {
                    to,
                    msg: ProcMsg::Broadcast { .. },
                } => to.clone(),
                _ => Vec::new(),
            })
            .collect()
    }

    #[test]
    fn start_floods_view_except_self() {
        let mut b = RbcastState::new(ProcessId(0));
        let actions = b.start(ev(0), &pids(&[0, 1, 2]), Time::ZERO);
        assert_eq!(send_targets(&actions), pids(&[1, 2]));
        assert_eq!(b.pending_count(), 1);
    }

    #[test]
    fn acks_retire_pending() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1, 2]), Time::ZERO);
        b.on_ack(ev(0).id, ProcessId(1));
        assert_eq!(b.pending_count(), 1);
        b.on_ack(ev(0).id, ProcessId(2));
        assert_eq!(b.pending_count(), 0);
        // Late/duplicate acks are harmless.
        b.on_ack(ev(0).id, ProcessId(2));
    }

    #[test]
    fn tick_retransmits_only_unacked_live_peers() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1, 2, 3]), Time::ZERO);
        b.on_ack(ev(0).id, ProcessId(1));
        // p3 left the view: written off.
        let actions = b.on_tick(&pids(&[0, 1, 2]), Time::ZERO);
        assert_eq!(send_targets(&actions), pids(&[2]));
        // Everyone relevant acked or gone → pending clears.
        b.on_ack(ev(0).id, ProcessId(2));
        assert_eq!(b.pending_count(), 0);
        assert!(b.on_tick(&pids(&[0, 1, 2]), Time::ZERO).is_empty());
    }

    #[test]
    fn all_peers_departed_clears_pending() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1]), Time::ZERO);
        let actions = b.on_tick(&pids(&[0]), Time::ZERO);
        assert!(actions.is_empty());
        assert_eq!(b.pending_count(), 0);
    }

    #[test]
    fn receiver_acks_and_relays_new_events_once() {
        let mut b = RbcastState::new(ProcessId(1));
        let view = pids(&[0, 1, 2]);
        let actions = b.on_broadcast(&ev(0), ProcessId(0), true, &view, true, Time::ZERO);
        // First action: ack to origin.
        assert!(matches!(
            actions[0],
            Action::Send {
                to: ProcessId(0),
                msg: ProcMsg::BroadcastAck { .. }
            }
        ));
        // Relay flood to peers.
        assert_eq!(send_targets(&actions), pids(&[0, 2]));
        // Second receipt: ack only, no re-relay.
        let again = b.on_broadcast(&ev(0), ProcessId(2), false, &view, true, Time::ZERO);
        assert_eq!(again.len(), 1);
        assert!(matches!(
            again[0],
            Action::Send {
                to: ProcessId(2),
                msg: ProcMsg::BroadcastAck { .. }
            }
        ));
    }

    #[test]
    fn known_event_not_relayed() {
        let mut b = RbcastState::new(ProcessId(1));
        let view = pids(&[0, 1, 2]);
        let actions = b.on_broadcast(&ev(0), ProcessId(0), false, &view, true, Time::ZERO);
        assert_eq!(actions.len(), 1, "ack only for already-known events");
    }

    #[test]
    fn empty_view_suppresses_relay() {
        // The eager-broadcast baseline: receivers acknowledge but never
        // re-flood (the origin is the only flooder).
        let mut b = RbcastState::new(ProcessId(1));
        let actions = b.on_broadcast(&ev(0), ProcessId(0), true, &[], true, Time::ZERO);
        assert_eq!(actions.len(), 1, "ack only");
        assert_eq!(b.pending_count(), 0, "nothing pending without a view");
        let silent = b.on_broadcast(&ev(1), ProcessId(0), true, &[], false, Time::ZERO);
        assert!(silent.is_empty(), "cumulative mode: beacon acks later");
    }

    #[test]
    fn cumulative_mode_skips_eager_ack_but_still_relays() {
        let mut b = RbcastState::new(ProcessId(1));
        let view = pids(&[0, 1, 2]);
        let actions = b.on_broadcast(&ev(0), ProcessId(0), true, &view, false, Time::ZERO);
        assert!(
            !actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: ProcMsg::BroadcastAck { .. },
                    ..
                }
            )),
            "no per-event ack in cumulative mode"
        );
        assert_eq!(send_targets(&actions), pids(&[0, 2]), "relay still floods");
    }

    #[test]
    fn cumulative_ack_retires_all_covered_events() {
        let mut b = RbcastState::new(ProcessId(0));
        let view = pids(&[0, 1, 2]);
        for seq in 0..4 {
            let _ = b.start(ev(seq), &view, Time::ZERO);
        }
        assert_eq!(b.pending_count(), 4);
        // Peer 1's beacon covers seqs 0..=2 in one message.
        assert_eq!(b.on_cumulative_ack(ProcessId(1), &[(SensorId(1), 2)]), 3);
        assert_eq!(b.pending_count(), 4, "peer 2 still unacked everywhere");
        assert_eq!(b.on_cumulative_ack(ProcessId(2), &[(SensorId(1), 2)]), 3);
        assert_eq!(b.pending_count(), 1, "only seq 3 outstanding");
        // Watermark below remaining seq retires nothing; other sensors
        // are ignored.
        assert_eq!(b.on_cumulative_ack(ProcessId(1), &[(SensorId(9), 100)]), 0);
        assert_eq!(b.on_cumulative_ack(ProcessId(1), &[(SensorId(1), 3)]), 1);
        assert_eq!(b.on_cumulative_ack(ProcessId(2), &[(SensorId(1), 3)]), 1);
        assert_eq!(b.pending_count(), 0);
    }

    #[test]
    fn cumulative_ack_spans_sensors() {
        let mut b = RbcastState::new(ProcessId(0));
        let view = pids(&[0, 1]);
        let _ = b.start(ev_on(1, 0), &view, Time::ZERO);
        let _ = b.start(ev_on(2, 5), &view, Time::ZERO);
        let _ = b.start(ev_on(3, 9), &view, Time::ZERO);
        // One beacon covering two of the three sensors.
        let retired = b.on_cumulative_ack(ProcessId(1), &[(SensorId(1), 10), (SensorId(3), 9)]);
        assert_eq!(retired, 2);
        assert_eq!(b.pending_count(), 1, "sensor 2 entry remains");
    }

    #[test]
    fn retransmissions_are_ordered_fanouts() {
        let mut b = RbcastState::new(ProcessId(0));
        let view = pids(&[0, 1, 2]);
        let _ = b.start(ev(1), &view, Time::ZERO);
        let _ = b.start(ev(0), &view, Time::ZERO);
        let actions = b.on_tick(&view, Time::ZERO);
        // One fan-out per pending event, in EventId order.
        let seqs: Vec<u64> = actions
            .iter()
            .map(|a| match a {
                Action::Fanout {
                    msg: ProcMsg::Broadcast { event, .. },
                    ..
                } => event.id.seq,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn age_guard_delays_retransmission() {
        let mut b = RbcastState::new(ProcessId(0))
            .with_timing(Duration::from_millis(500), Duration::from_secs(2));
        let view = pids(&[0, 1]);
        let _ = b.start(ev(0), &view, Time::ZERO);
        assert!(
            b.on_tick(&view, Time::from_millis(499)).is_empty(),
            "inside the guard: no retransmission"
        );
        let due = b.on_tick(&view, Time::from_millis(500));
        assert_eq!(send_targets(&due), pids(&[1]));
        // The guard re-arms from the retransmission instant.
        assert!(b.on_tick(&view, Time::from_millis(999)).is_empty());
        assert!(!b.on_tick(&view, Time::from_millis(1_000)).is_empty());
    }

    #[test]
    fn tracked_events_retire_by_watermark_or_escalate() {
        let mut b = RbcastState::new(ProcessId(0))
            .with_timing(Duration::from_millis(500), Duration::from_secs(2));
        let view = pids(&[0, 1, 2]);
        b.track(ev(0), &view, Time::ZERO);
        b.track(ev(1), &view, Time::ZERO);
        assert_eq!(b.pending_count(), 2);
        // No flood was sent and none is due inside the grace period.
        assert!(b.on_tick(&view, Time::from_secs(1)).is_empty());
        // Keep-alive watermarks retire without any broadcast traffic.
        assert_eq!(b.on_cumulative_ack(ProcessId(1), &[(SensorId(1), 1)]), 2);
        assert_eq!(b.on_cumulative_ack(ProcessId(2), &[(SensorId(1), 0)]), 1);
        assert_eq!(b.pending_count(), 1, "seq 1 still awaits peer 2");
        // Past the grace period the survivor escalates to a flood
        // addressed to the lagging peer only.
        let due = b.on_tick(&view, Time::from_secs(2));
        assert_eq!(send_targets(&due), pids(&[2]));
    }

    #[test]
    fn track_is_idempotent_and_respects_existing_floods() {
        let mut b = RbcastState::new(ProcessId(0));
        let view = pids(&[0, 1]);
        let _ = b.start(ev(0), &view, Time::ZERO);
        b.track(ev(0), &view, Time::ZERO);
        assert_eq!(b.pending_count(), 1, "flood entry not duplicated");
        b.track(ev(1), &view, Time::ZERO);
        b.track(ev(1), &view, Time::ZERO);
        assert_eq!(b.pending_count(), 2);
        b.track(ev(2), &pids(&[0]), Time::ZERO);
        assert_eq!(b.pending_count(), 2, "no peers, nothing to track");
    }

    #[test]
    fn prune_relayed_forgets_old_markers() {
        let mut b = RbcastState::new(ProcessId(0));
        let view = pids(&[0, 1]);
        for seq in 0..4 {
            let _ = b.start(ev(seq), &view, Time::ZERO);
        }
        assert_eq!(b.relayed_count(), 4);
        b.prune_relayed(SensorId(1), 2);
        assert_eq!(b.relayed_count(), 1);
        b.prune_relayed(SensorId(1), u64::MAX);
        assert_eq!(b.relayed_count(), 0);
        // Unknown sensors are a no-op.
        b.prune_relayed(SensorId(9), 10);
    }

    #[test]
    fn singleton_start_is_noop() {
        let mut b = RbcastState::new(ProcessId(0));
        assert!(b.start(ev(0), &pids(&[0]), Time::ZERO).is_empty());
        assert_eq!(b.pending_count(), 0);
    }
}
