//! Reliable broadcast — the Gapless fallback (§4.1).
//!
//! When the ring detects that an event stalled before reaching every
//! process, the detecting process floods it: send to every peer in the
//! local view and retransmit until each acknowledges or leaves the
//! view. Receivers that see the event for the first time re-broadcast
//! once themselves (eager reliable broadcast in the crash-recovery
//! model, after Boichat & Guerraoui), which tolerates the origin
//! crashing mid-broadcast.

use std::collections::{BTreeSet, HashMap};

use rivulet_types::{Event, EventId, ProcessId};

use crate::messages::ProcMsg;

use super::Action;

/// One process's reliable-broadcast state.
#[derive(Debug)]
pub struct RbcastState {
    me: ProcessId,
    /// Broadcasts this process originated (or relayed) that still await
    /// acknowledgements.
    pending: HashMap<EventId, PendingBroadcast>,
    /// Events this process has already relayed, to bound re-flooding.
    relayed: BTreeSet<EventId>,
}

#[derive(Debug)]
struct PendingBroadcast {
    event: Event,
    unacked: BTreeSet<ProcessId>,
}

impl RbcastState {
    /// Creates broadcast state for process `me`.
    #[must_use]
    pub fn new(me: ProcessId) -> Self {
        Self {
            me,
            pending: HashMap::new(),
            relayed: BTreeSet::new(),
        }
    }

    /// Number of broadcasts still awaiting acknowledgements.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Initiates (or re-initiates) a broadcast of `event` to every peer
    /// in `view` except `me`.
    pub fn start(&mut self, event: Event, view: &[ProcessId]) -> Vec<Action> {
        let peers: BTreeSet<ProcessId> = view.iter().copied().filter(|p| *p != self.me).collect();
        if peers.is_empty() {
            return Vec::new();
        }
        self.relayed.insert(event.id);
        let actions = peers
            .iter()
            .map(|p| Action::Send {
                to: *p,
                msg: ProcMsg::Broadcast {
                    event: event.clone(),
                    origin: self.me,
                },
            })
            .collect();
        self.pending.insert(
            event.id,
            PendingBroadcast {
                event,
                unacked: peers,
            },
        );
        actions
    }

    /// A broadcast copy arrived. Returns the ack to the origin plus —
    /// if `was_new` and not already relayed — a relay flood of our own,
    /// making delivery survive origin crashes.
    pub fn on_broadcast(
        &mut self,
        event: &Event,
        origin: ProcessId,
        was_new: bool,
        view: &[ProcessId],
    ) -> Vec<Action> {
        let mut actions = vec![Action::Send {
            to: origin,
            msg: ProcMsg::BroadcastAck {
                id: event.id,
                from: self.me,
            },
        }];
        if was_new && !self.relayed.contains(&event.id) {
            actions.extend(self.start(event.clone(), view));
        }
        actions
    }

    /// A peer acknowledged one of our broadcasts.
    pub fn on_ack(&mut self, id: EventId, from: ProcessId) {
        if let Some(p) = self.pending.get_mut(&id) {
            p.unacked.remove(&from);
            if p.unacked.is_empty() {
                self.pending.remove(&id);
            }
        }
    }

    /// Periodic retransmission tick: re-send pending broadcasts to
    /// still-unacked peers that remain in the view; peers that left the
    /// view are written off (they will recover via anti-entropy).
    pub fn on_tick(&mut self, view: &[ProcessId]) -> Vec<Action> {
        let mut actions = Vec::new();
        self.pending.retain(|_, p| {
            p.unacked.retain(|peer| view.contains(peer));
            if p.unacked.is_empty() {
                return false;
            }
            for peer in &p.unacked {
                actions.push(Action::Send {
                    to: *peer,
                    msg: ProcMsg::Broadcast {
                        event: p.event.clone(),
                        origin: self.me,
                    },
                });
            }
            true
        });
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventKind, SensorId, Time};

    fn ev(seq: u64) -> Event {
        Event::new(
            EventId::new(SensorId(1), seq),
            EventKind::DoorOpen,
            Time::from_millis(seq),
        )
    }

    fn pids(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    fn send_targets(actions: &[Action]) -> Vec<ProcessId> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: ProcMsg::Broadcast { .. },
                } => Some(*to),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_floods_view_except_self() {
        let mut b = RbcastState::new(ProcessId(0));
        let actions = b.start(ev(0), &pids(&[0, 1, 2]));
        assert_eq!(send_targets(&actions), pids(&[1, 2]));
        assert_eq!(b.pending_count(), 1);
    }

    #[test]
    fn acks_retire_pending() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1, 2]));
        b.on_ack(ev(0).id, ProcessId(1));
        assert_eq!(b.pending_count(), 1);
        b.on_ack(ev(0).id, ProcessId(2));
        assert_eq!(b.pending_count(), 0);
        // Late/duplicate acks are harmless.
        b.on_ack(ev(0).id, ProcessId(2));
    }

    #[test]
    fn tick_retransmits_only_unacked_live_peers() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1, 2, 3]));
        b.on_ack(ev(0).id, ProcessId(1));
        // p3 left the view: written off.
        let actions = b.on_tick(&pids(&[0, 1, 2]));
        assert_eq!(send_targets(&actions), pids(&[2]));
        // Everyone relevant acked or gone → pending clears.
        b.on_ack(ev(0).id, ProcessId(2));
        assert_eq!(b.pending_count(), 0);
        assert!(b.on_tick(&pids(&[0, 1, 2])).is_empty());
    }

    #[test]
    fn all_peers_departed_clears_pending() {
        let mut b = RbcastState::new(ProcessId(0));
        let _ = b.start(ev(0), &pids(&[0, 1]));
        let actions = b.on_tick(&pids(&[0]));
        assert!(actions.is_empty());
        assert_eq!(b.pending_count(), 0);
    }

    #[test]
    fn receiver_acks_and_relays_new_events_once() {
        let mut b = RbcastState::new(ProcessId(1));
        let view = pids(&[0, 1, 2]);
        let actions = b.on_broadcast(&ev(0), ProcessId(0), true, &view);
        // First action: ack to origin.
        assert!(matches!(
            actions[0],
            Action::Send {
                to: ProcessId(0),
                msg: ProcMsg::BroadcastAck { .. }
            }
        ));
        // Relay flood to peers.
        assert_eq!(send_targets(&actions), pids(&[0, 2]));
        // Second receipt: ack only, no re-relay.
        let again = b.on_broadcast(&ev(0), ProcessId(2), false, &view);
        assert_eq!(again.len(), 1);
        assert!(matches!(
            again[0],
            Action::Send {
                to: ProcessId(2),
                msg: ProcMsg::BroadcastAck { .. }
            }
        ));
    }

    #[test]
    fn known_event_not_relayed() {
        let mut b = RbcastState::new(ProcessId(1));
        let view = pids(&[0, 1, 2]);
        let actions = b.on_broadcast(&ev(0), ProcessId(0), false, &view);
        assert_eq!(actions.len(), 1, "ack only for already-known events");
    }

    #[test]
    fn singleton_start_is_noop() {
        let mut b = RbcastState::new(ProcessId(0));
        assert!(b.start(ev(0), &pids(&[0])).is_empty());
        assert_eq!(b.pending_count(), 0);
    }
}
