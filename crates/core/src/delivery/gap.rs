//! The Gap chain protocol (§4.2).
//!
//! Gap delivery is best-effort and deliberately cheap: for each sensor,
//! the sensor nodes form a logical chain, and only the active sensor
//! node **closest to the active logic node** forwards events; every
//! other receiving process simply discards them. Link losses at the
//! forwarder and crash-detection windows translate directly into gaps
//! in the application's event stream — the trade-off Table 1 apps
//! accept in exchange for near-zero overhead.

use rivulet_types::ProcessId;

/// Decides which process should forward a sensor's events to the
/// application-bearing process, per the Gap chain rule.
///
/// * `chain` — the app's process chain in placement order (§7);
///   position 0 is the preferred application host.
/// * `reachers` — processes with an *active* sensor node for this
///   sensor (they can hear the physical sensor).
/// * `alive` — liveness predicate from the caller's local view.
/// * `active_logic` — the process currently believed to host the
///   active logic node.
///
/// Returns the live reacher closest to `active_logic` in chain
/// distance, ties broken toward the front of the chain. Returns `None`
/// when no live process can reach the sensor.
#[must_use]
pub fn forwarder(
    chain: &[ProcessId],
    reachers: &[ProcessId],
    alive: impl Fn(ProcessId) -> bool,
    active_logic: ProcessId,
) -> Option<ProcessId> {
    let pos = |p: ProcessId| chain.iter().position(|c| *c == p);
    let logic_pos = pos(active_logic)?;
    reachers
        .iter()
        .copied()
        .filter(|p| alive(*p))
        .filter_map(|p| pos(p).map(|i| (i, p)))
        .min_by_key(|(i, _)| (i.abs_diff(logic_pos), *i))
        .map(|(_, p)| p)
}

/// What a process holding a freshly received Gap event should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapRole {
    /// This process hosts the active logic node: deliver locally.
    DeliverLocally,
    /// This process is the designated forwarder: send a
    /// [`crate::messages::ProcMsg::GapForward`] to the given process.
    ForwardTo(ProcessId),
    /// Another process is responsible: discard the event.
    Discard,
}

/// Computes the role of process `me` for an event it just received from
/// the physical sensor.
#[must_use]
pub fn role_of(
    me: ProcessId,
    chain: &[ProcessId],
    reachers: &[ProcessId],
    alive: impl Fn(ProcessId) -> bool,
    active_logic: ProcessId,
) -> GapRole {
    if me == active_logic {
        return GapRole::DeliverLocally;
    }
    match forwarder(chain, reachers, alive, active_logic) {
        Some(f) if f == me => GapRole::ForwardTo(active_logic),
        _ => GapRole::Discard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    const ALL_ALIVE: fn(ProcessId) -> bool = |_| true;

    #[test]
    fn closest_reacher_forwards() {
        // Paper's Fig. 2 example: chain hub(0), TV(1), fridge(2); the
        // door sensor reaches TV and fridge; logic is active at hub.
        // TV (distance 1) forwards; fridge discards.
        let chain = pids(&[0, 1, 2]);
        let reachers = pids(&[1, 2]);
        assert_eq!(
            forwarder(&chain, &reachers, ALL_ALIVE, ProcessId(0)),
            Some(ProcessId(1))
        );
        assert_eq!(
            role_of(ProcessId(1), &chain, &reachers, ALL_ALIVE, ProcessId(0)),
            GapRole::ForwardTo(ProcessId(0))
        );
        assert_eq!(
            role_of(ProcessId(2), &chain, &reachers, ALL_ALIVE, ProcessId(0)),
            GapRole::Discard
        );
    }

    #[test]
    fn app_host_reaching_sensor_delivers_locally() {
        let chain = pids(&[0, 1, 2]);
        let reachers = pids(&[0, 1]);
        assert_eq!(
            role_of(ProcessId(0), &chain, &reachers, ALL_ALIVE, ProcessId(0)),
            GapRole::DeliverLocally
        );
        // And the forwarder computation also picks it (distance 0).
        assert_eq!(
            forwarder(&chain, &reachers, ALL_ALIVE, ProcessId(0)),
            Some(ProcessId(0))
        );
    }

    #[test]
    fn forwarder_failover_moves_down_the_chain() {
        let chain = pids(&[0, 1, 2]);
        let reachers = pids(&[1, 2]);
        // TV (p1) crashed: fridge becomes closest live reacher.
        let alive = |p: ProcessId| p != ProcessId(1);
        assert_eq!(
            forwarder(&chain, &reachers, alive, ProcessId(0)),
            Some(ProcessId(2))
        );
        assert_eq!(
            role_of(ProcessId(2), &chain, &reachers, alive, ProcessId(0)),
            GapRole::ForwardTo(ProcessId(0))
        );
    }

    #[test]
    fn tie_breaks_toward_chain_front() {
        // Logic at position 1; reachers at positions 0 and 2 are
        // equidistant — the earlier chain position wins.
        let chain = pids(&[10, 11, 12]);
        let reachers = pids(&[10, 12]);
        assert_eq!(
            forwarder(&chain, &reachers, ALL_ALIVE, ProcessId(11)),
            Some(ProcessId(10))
        );
    }

    #[test]
    fn no_live_reacher_means_nobody_forwards() {
        let chain = pids(&[0, 1, 2]);
        let reachers = pids(&[1, 2]);
        let alive = |p: ProcessId| p == ProcessId(0);
        assert_eq!(forwarder(&chain, &reachers, alive, ProcessId(0)), None);
        assert_eq!(
            role_of(ProcessId(1), &chain, &reachers, alive, ProcessId(0)),
            GapRole::Discard
        );
    }

    #[test]
    fn unknown_logic_process_yields_none() {
        let chain = pids(&[0, 1]);
        assert_eq!(
            forwarder(&chain, &pids(&[0]), ALL_ALIVE, ProcessId(9)),
            None
        );
    }

    #[test]
    fn reacher_outside_chain_is_ignored() {
        let chain = pids(&[0, 1]);
        let reachers = pids(&[5]);
        assert_eq!(forwarder(&chain, &reachers, ALL_ALIVE, ProcessId(0)), None);
    }
}
