//! The Rivulet delivery service: Gap and Gapless event delivery.
//!
//! The delivery service has two components (§4): *event ingest*
//! (fetching events from sensors, including coordinated polling) and
//! *event forwarding* (replicating and delivering events to active
//! logic nodes). Each protocol is implemented as a pure state machine
//! that consumes protocol inputs and returns [`Action`]s; the process
//! actor translates actions into network sends. This keeps every
//! protocol unit-testable without a driver.

pub mod gap;
pub mod gapless;
pub mod polling;
pub mod rbcast;

use rivulet_types::{Event, ProcessId};

use crate::messages::ProcMsg;

/// The delivery guarantee chosen per sensor input (§2.2, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Delivery {
    /// Best-effort: low overhead, may lose events on failures (§4.2).
    Gap,
    /// Post-ingest guaranteed: any event received by any correct
    /// process is eventually delivered to interested apps (§4.1).
    Gapless,
}

impl std::fmt::Display for Delivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Delivery::Gap => write!(f, "Gap"),
            Delivery::Gapless => write!(f, "Gapless"),
        }
    }
}

/// A side effect requested by a delivery state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Send a protocol message to a peer process.
    Send {
        /// Destination process.
        to: ProcessId,
        /// The message.
        msg: ProcMsg,
    },
    /// Send one protocol message to several peers. The process layer
    /// encodes the message once and cheap-clones the frozen bytes to
    /// every destination, so an n-peer flood costs one encode instead
    /// of n.
    Fanout {
        /// Destination processes, ascending, excluding the sender.
        to: Vec<ProcessId>,
        /// The message.
        msg: ProcMsg,
    },
    /// The event is newly known at this process: hand it to the local
    /// logic node (the process delivers it only if its logic node is
    /// active).
    Deliver {
        /// The event.
        event: Event,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_displays() {
        assert_eq!(Delivery::Gap.to_string(), "Gap");
        assert_eq!(Delivery::Gapless.to_string(), "Gapless");
    }
}
