//! Coordinated polling of poll-based sensors (§4.1, Fig. 8).
//!
//! Poll-based sensors answer at most one request at a time and silently
//! drop the rest, so uncoordinated polling from several processes
//! wastes battery and produces failed polls. Rivulet coordinates
//! *without communication*: the `i`-th of `n` active sensor nodes polls
//! at offset `i·e/n` into each epoch of length `e`, and cancels its
//! poll if the epoch's event already arrived via event forwarding. In
//! the common case the sensor is polled exactly once per epoch.
//!
//! [`PollState`] tracks one process's schedule for one sensor. The
//! process actor owns the timers; this module owns the decisions.

use rand::rngs::StdRng;
use rand::Rng;
use rivulet_types::{Duration, SensorId};

/// How polls are scheduled within an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollStrategy {
    /// The paper's slotted schedule: node `i` polls at `i·e/n`, with
    /// re-polls on poll failure. Used by Gapless delivery.
    Coordinated,
    /// The Fig. 8 baseline: every node polls once, uniformly at random
    /// within the epoch (still cancelling if the event arrives first).
    Uncoordinated,
    /// Gap delivery: only the designated node polls, at epoch start,
    /// without retries — optimal overhead, no fault tolerance (§4.2).
    GapSingle,
}

/// The polling plan for one sensor input.
#[derive(Debug, Clone, PartialEq)]
pub struct PollPlan {
    /// The sensor to poll.
    pub sensor: SensorId,
    /// Application epoch length (`e`): one event required per epoch.
    pub epoch: Duration,
    /// The sensor's nominal time to answer a poll, used to time
    /// re-polls.
    pub poll_latency: Duration,
    /// Scheduling strategy.
    pub strategy: PollStrategy,
}

/// One process's polling schedule state for one sensor.
#[derive(Debug)]
pub struct PollState {
    plan: PollPlan,
    /// This process's slot index among the sensor's active sensor
    /// nodes (sorted order), and the total count `n`.
    slot: usize,
    n_nodes: usize,
    current_epoch: u64,
    satisfied: bool,
    polls_issued: u64,
    epochs_missed: u64,
    epochs_seen: u64,
}

impl PollState {
    /// Creates the schedule for a process occupying `slot` of
    /// `n_nodes` active sensor nodes.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= n_nodes` or `n_nodes == 0`.
    #[must_use]
    pub fn new(plan: PollPlan, slot: usize, n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "at least one active sensor node");
        assert!(slot < n_nodes, "slot must index the node set");
        Self {
            plan,
            slot,
            n_nodes,
            current_epoch: 0,
            satisfied: false,
            polls_issued: 0,
            epochs_missed: 0,
            epochs_seen: 0,
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &PollPlan {
        &self.plan
    }

    /// The epoch currently in progress.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Total poll requests this process has issued.
    #[must_use]
    pub fn polls_issued(&self) -> u64 {
        self.polls_issued
    }

    /// Epochs that ended with no event (the condition for the Gapless
    /// "missed epoch" exception of §4.1).
    #[must_use]
    pub fn epochs_missed(&self) -> u64 {
        self.epochs_missed
    }

    /// Epochs that have fully elapsed.
    #[must_use]
    pub fn epochs_seen(&self) -> u64 {
        self.epochs_seen
    }

    /// A new epoch begins. Returns the delay from epoch start at which
    /// this process should attempt its poll, or `None` if it should not
    /// poll this epoch (`GapSingle` non-designates pass
    /// `participates = false`).
    pub fn on_epoch_start(
        &mut self,
        epoch: u64,
        participates: bool,
        rng: &mut StdRng,
    ) -> Option<Duration> {
        self.current_epoch = epoch;
        self.satisfied = false;
        if !participates {
            return None;
        }
        match self.plan.strategy {
            PollStrategy::Coordinated => {
                let offset = self.plan.epoch.as_micros() * self.slot as u64 / self.n_nodes as u64;
                Some(Duration::from_micros(offset))
            }
            PollStrategy::Uncoordinated => {
                // Uniform within the epoch, leaving room for the answer.
                let span = self
                    .plan
                    .epoch
                    .as_micros()
                    .saturating_sub(self.plan.poll_latency.as_micros())
                    .max(1);
                Some(Duration::from_micros(rng.gen_range(0..span)))
            }
            PollStrategy::GapSingle => Some(Duration::ZERO),
        }
    }

    /// The slot timer fired. Returns `true` if a poll request should be
    /// sent now. Coordinated and Gap polls are cancelled when the
    /// epoch's event already arrived via forwarding (the paper's
    /// cancellation rule); the uncoordinated baseline polls
    /// unconditionally, exactly as §8.5 describes ("each process issues
    /// one poll request uniformly randomly within each epoch").
    pub fn on_slot(&mut self) -> bool {
        if self.satisfied && self.plan.strategy != PollStrategy::Uncoordinated {
            return false;
        }
        self.polls_issued += 1;
        true
    }

    /// An event for `epoch` reached this process (own poll response or
    /// ring/broadcast forwarding). Returns `true` if the caller should
    /// cancel pending poll timers — never for the uncoordinated
    /// baseline, which by definition polls unconditionally (§8.5).
    pub fn on_event(&mut self, epoch: u64) -> bool {
        if epoch == self.current_epoch && !self.satisfied {
            self.satisfied = true;
            return self.plan.strategy != PollStrategy::Uncoordinated;
        }
        false
    }

    /// The re-poll timer fired (armed `poll_latency + margin` after a
    /// poll). Returns `true` if the poll should be retried — only the
    /// coordinated strategy retries (§4.1's "failed poll requests
    /// requiring re-polling").
    pub fn on_repoll(&mut self) -> bool {
        if self.satisfied || self.plan.strategy != PollStrategy::Coordinated {
            return false;
        }
        self.polls_issued += 1;
        true
    }

    /// The epoch ended. Returns `true` if no event arrived (a gap that
    /// Gapless surfaces to the app as an exception).
    pub fn on_epoch_end(&mut self) -> bool {
        self.epochs_seen += 1;
        let missed = !self.satisfied;
        if missed {
            self.epochs_missed += 1;
        }
        missed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan(strategy: PollStrategy) -> PollPlan {
        PollPlan {
            sensor: SensorId(1),
            epoch: Duration::from_millis(1_800),
            poll_latency: Duration::from_millis(600),
            strategy,
        }
    }

    #[test]
    fn coordinated_slots_are_evenly_spaced() {
        let mut rng = StdRng::seed_from_u64(0);
        for (slot, expect_ms) in [(0usize, 0u64), (1, 600), (2, 1_200)] {
            let mut s = PollState::new(plan(PollStrategy::Coordinated), slot, 3);
            let offset = s.on_epoch_start(0, true, &mut rng).expect("participates");
            assert_eq!(offset, Duration::from_millis(expect_ms), "slot {slot}");
        }
    }

    #[test]
    fn uncoordinated_offsets_are_random_within_epoch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = PollState::new(plan(PollStrategy::Uncoordinated), 0, 3);
        let mut offsets = Vec::new();
        for epoch in 0..100 {
            let off = s
                .on_epoch_start(epoch, true, &mut rng)
                .expect("participates");
            assert!(off < Duration::from_millis(1_800));
            offsets.push(off);
        }
        offsets.sort();
        assert!(offsets.first() != offsets.last(), "offsets must vary");
    }

    #[test]
    fn gap_single_polls_at_epoch_start_only_if_designated() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = PollState::new(plan(PollStrategy::GapSingle), 0, 3);
        assert_eq!(s.on_epoch_start(0, true, &mut rng), Some(Duration::ZERO));
        assert_eq!(s.on_epoch_start(1, false, &mut rng), None);
    }

    #[test]
    fn event_arrival_cancels_slot_poll() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = PollState::new(plan(PollStrategy::Coordinated), 1, 3);
        let _ = s.on_epoch_start(5, true, &mut rng);
        assert!(s.on_event(5), "first event satisfies the epoch");
        assert!(!s.on_slot(), "slot cancelled by forwarding");
        assert_eq!(s.polls_issued(), 0);
        assert!(!s.on_event(5), "duplicate event ignored");
    }

    #[test]
    fn stale_epoch_event_does_not_satisfy() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = PollState::new(plan(PollStrategy::Coordinated), 0, 3);
        let _ = s.on_epoch_start(5, true, &mut rng);
        assert!(!s.on_event(4), "late event from a previous epoch");
        assert!(s.on_slot(), "still must poll");
    }

    #[test]
    fn repoll_only_for_coordinated_and_unsatisfied() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = PollState::new(plan(PollStrategy::Coordinated), 0, 3);
        let _ = c.on_epoch_start(0, true, &mut rng);
        assert!(c.on_slot());
        assert!(c.on_repoll(), "no answer yet: retry");
        assert!(c.on_event(0));
        assert!(!c.on_repoll(), "satisfied: stop");
        assert_eq!(c.polls_issued(), 2);

        let mut u = PollState::new(plan(PollStrategy::Uncoordinated), 0, 3);
        let _ = u.on_epoch_start(0, true, &mut rng);
        assert!(u.on_slot());
        assert!(!u.on_repoll(), "uncoordinated never retries");

        let mut g = PollState::new(plan(PollStrategy::GapSingle), 0, 1);
        let _ = g.on_epoch_start(0, true, &mut rng);
        assert!(g.on_slot());
        assert!(!g.on_repoll(), "gap never retries");
    }

    #[test]
    fn epoch_end_counts_misses() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = PollState::new(plan(PollStrategy::Coordinated), 0, 3);
        let _ = s.on_epoch_start(0, true, &mut rng);
        assert!(s.on_epoch_end(), "no event: miss");
        let _ = s.on_epoch_start(1, true, &mut rng);
        assert!(s.on_event(1));
        assert!(!s.on_epoch_end());
        assert_eq!(s.epochs_missed(), 1);
        assert_eq!(s.epochs_seen(), 2);
    }

    #[test]
    #[should_panic(expected = "slot must index the node set")]
    fn bad_slot_panics() {
        let _ = PollState::new(plan(PollStrategy::Coordinated), 3, 3);
    }
}
