//! The Rivulet platform core.
//!
//! Rivulet is a fault-tolerant distributed platform for smart-home
//! applications (Middleware 2017). Instead of funnelling everything
//! through a single hub, it spreads sensing, event delivery, and app
//! execution across the home's smart appliances, and keeps apps running
//! through link losses, sensor failures, process crashes, and network
//! partitions.
//!
//! # Services
//!
//! * [`delivery`] — the **delivery service**: configurable per-sensor
//!   guarantees. [`delivery::Delivery::Gap`] is best-effort and cheap;
//!   [`delivery::Delivery::Gapless`] replicates every ingested event at
//!   all available processes through a light-weight ring protocol with
//!   reliable-broadcast fallback, plus coordinated polling for
//!   poll-based sensors.
//! * [`execution`] — the **execution service**: active/shadow logic
//!   nodes with bully-style failover over a deterministic placement
//!   chain.
//! * [`app`] — the **programming model**: operator DAGs over windows
//!   with trigger/evictor policies, combiners (including `FTCombiner`
//!   and Marzullo fault-tolerant averaging), and declarative delivery
//!   guarantees.
//! * [`process`] + [`deploy`] — the **runtime**: one actor per host
//!   gluing it all together, deployable on the deterministic simulator
//!   or the threaded live driver.
//!
//! # Quickstart
//!
//! ```
//! use rivulet_core::app::{AppBuilder, CombinerSpec, SwitchOnEvents, WindowSpec};
//! use rivulet_core::delivery::Delivery;
//! use rivulet_core::deploy::HomeBuilder;
//! use rivulet_devices::sensor::{EmissionSchedule, PayloadSpec};
//! use rivulet_net::sim::{SimConfig, SimNet};
//! use rivulet_types::{ActuationState, AppId, Duration, EventKind, Time};
//!
//! let mut net = SimNet::new(SimConfig::with_seed(7));
//! let mut home = HomeBuilder::new(&mut net);
//! let hub = home.add_host("hub");
//! let tv = home.add_host("tv");
//! let (door, _) = home.add_push_sensor(
//!     "door",
//!     PayloadSpec::KindOnly(EventKind::DoorOpen),
//!     EmissionSchedule::Periodic(Duration::from_secs(5)),
//!     &[tv],
//! );
//! let (light, light_probe) =
//!     home.add_actuator("light", ActuationState::Switch(false), &[hub]);
//! let app = AppBuilder::new(AppId(1), "door-light")
//!     .operator(
//!         "TurnLightOnOff",
//!         CombinerSpec::Any,
//!         SwitchOnEvents {
//!             on_kinds: vec![EventKind::DoorOpen],
//!             off_kinds: vec![EventKind::DoorClose],
//!             actuator: light,
//!         },
//!     )
//!     .sensor(door, Delivery::Gapless, WindowSpec::count(1))
//!     .actuator(light, Delivery::Gapless)
//!     .done()
//!     .build()
//!     .expect("valid app");
//! let _probe = home.add_app(app);
//! let _home = home.build();
//! net.run_until(Time::from_secs(30));
//! assert!(light_probe.effect_count() > 0, "the light was switched");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod app;
pub mod config;
pub mod delivery;
pub mod deploy;
pub mod execution;
pub mod gating;
pub mod membership;
pub mod messages;
pub mod probe;
pub mod process;
pub mod repair;
pub mod routine;
pub mod store;

pub use config::{ForwardingMode, RivuletConfig};
pub use delivery::Delivery;
pub use deploy::{Home, HomeBuilder};
pub use probe::{AppProbe, StoreProbe};
pub use process::DurabilitySpec;
pub use routine::{InstanceRecord, RoutineProbe, RoutineSpec, RoutineStep};
