//! Windows: bounded event buffers with trigger and evictor policies.
//!
//! A window is "a contiguous and finite portion of an event stream"
//! (§6.1) with three knobs: a **bound** on the buffer (count or
//! time-span), a **trigger policy** deciding when the operator sees the
//! buffer, and an **evictor policy** purging old events. Combining them
//! yields tumbling batches, sliding windows, burst suppression — the
//! semantics of Table 2's `TimeWindow`/`CountWindow` API.

use std::collections::VecDeque;

use rivulet_types::{Duration, Event, Time};

/// Bound on the events a window retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowBound {
    /// At most `n` events (oldest dropped first).
    Count(usize),
    /// Only events younger than the span (relative to now).
    Span(Duration),
}

/// When the operator is presented with the buffer (§6.1's trigger
/// policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerPolicy {
    /// Fire when `n` events have accumulated since the last trigger.
    OnCount(usize),
    /// Fire every `d` of time (the runtime arms the timer).
    Every(Duration),
}

/// How events are purged (§6.1's evictor policy); applied before each
/// trigger snapshot in addition to the structural bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictorPolicy {
    /// Keep only the last `n` events.
    KeepLast(usize),
    /// Keep only events younger than `d`.
    KeepWithin(Duration),
}

/// Full window specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    /// Structural bound of the buffer.
    pub bound: WindowBound,
    /// Trigger policy.
    pub trigger: TriggerPolicy,
    /// Optional additional evictor.
    pub evictor: Option<EvictorPolicy>,
    /// Whether a successful trigger clears the buffer: `true` yields
    /// disjoint batches, `false` sliding windows (§6.1).
    pub clear_on_trigger: bool,
}

impl WindowSpec {
    /// `CountWindow(n)` of Table 2: buffer `n`, trigger on `n`,
    /// disjoint batches.
    #[must_use]
    pub fn count(n: usize) -> Self {
        assert!(n > 0, "count window needs a positive count");
        Self {
            bound: WindowBound::Count(n),
            trigger: TriggerPolicy::OnCount(n),
            evictor: None,
            clear_on_trigger: true,
        }
    }

    /// `TimeWindow(span)` of Table 2: buffer the span, trigger every
    /// span, disjoint batches.
    #[must_use]
    pub fn time(span: Duration) -> Self {
        assert!(span > Duration::ZERO, "time window needs a positive span");
        Self {
            bound: WindowBound::Span(span),
            trigger: TriggerPolicy::Every(span),
            evictor: None,
            clear_on_trigger: true,
        }
    }

    /// Replaces the trigger policy.
    #[must_use]
    pub fn with_trigger(mut self, trigger: TriggerPolicy) -> Self {
        self.trigger = trigger;
        self
    }

    /// Adds an evictor policy.
    #[must_use]
    pub fn with_evictor(mut self, evictor: EvictorPolicy) -> Self {
        self.evictor = Some(evictor);
        self
    }

    /// Makes the window sliding: triggers do not clear the buffer.
    /// The §6.1 example — median over the last N camera frames — is
    /// `WindowSpec::count(1).sliding().with_evictor(KeepLast(N))`.
    #[must_use]
    pub fn sliding(mut self) -> Self {
        self.clear_on_trigger = false;
        self
    }
}

/// A live window buffering one input stream of one operator.
#[derive(Debug)]
pub struct Window {
    spec: WindowSpec,
    buf: VecDeque<Event>,
    since_trigger: usize,
}

impl Window {
    /// Creates an empty window.
    #[must_use]
    pub fn new(spec: WindowSpec) -> Self {
        Self {
            spec,
            buf: VecDeque::new(),
            since_trigger: 0,
        }
    }

    /// The specification this window follows.
    #[must_use]
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Inserts an event; returns `true` if a count trigger fired
    /// (the caller then takes a [`Window::snapshot`]).
    pub fn push(&mut self, event: Event, now: Time) -> bool {
        self.buf.push_back(event);
        self.since_trigger += 1;
        self.enforce_bound(now);
        match self.spec.trigger {
            TriggerPolicy::OnCount(n) => {
                if self.since_trigger >= n {
                    self.since_trigger = 0;
                    true
                } else {
                    false
                }
            }
            TriggerPolicy::Every(_) => false,
        }
    }

    /// The period at which the runtime must arm this window's timer,
    /// if it is time-triggered.
    #[must_use]
    pub fn timer_period(&self) -> Option<Duration> {
        match self.spec.trigger {
            TriggerPolicy::Every(d) => Some(d),
            TriggerPolicy::OnCount(_) => None,
        }
    }

    /// A non-consuming view of the buffer: applies the evictor but
    /// never clears, regardless of the spec. Used when *another*
    /// stream's trigger combines this stream's current contents.
    pub fn peek(&mut self, now: Time) -> Vec<Event> {
        self.apply_evictor(now);
        self.buf.iter().cloned().collect()
    }

    /// Takes the triggered view of the buffer: applies the evictor,
    /// snapshots, and clears if the spec says so.
    pub fn snapshot(&mut self, now: Time) -> Vec<Event> {
        self.apply_evictor(now);
        let view: Vec<Event> = self.buf.iter().cloned().collect();
        if self.spec.clear_on_trigger {
            self.buf.clear();
            self.since_trigger = 0;
        }
        view
    }

    fn enforce_bound(&mut self, now: Time) {
        match self.spec.bound {
            WindowBound::Count(n) => {
                while self.buf.len() > n {
                    self.buf.pop_front();
                }
            }
            WindowBound::Span(d) => {
                while self
                    .buf
                    .front()
                    .is_some_and(|e| now.duration_since(e.emitted_at) > d)
                {
                    self.buf.pop_front();
                }
            }
        }
    }

    fn apply_evictor(&mut self, now: Time) {
        match self.spec.evictor {
            None => {}
            Some(EvictorPolicy::KeepLast(n)) => {
                while self.buf.len() > n {
                    self.buf.pop_front();
                }
            }
            Some(EvictorPolicy::KeepWithin(d)) => {
                while self
                    .buf
                    .front()
                    .is_some_and(|e| now.duration_since(e.emitted_at) > d)
                {
                    self.buf.pop_front();
                }
            }
        }
        self.enforce_bound(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventId, EventKind, SensorId};

    fn ev(seq: u64, at_ms: u64) -> Event {
        Event::new(
            EventId::new(SensorId(1), seq),
            EventKind::Motion,
            Time::from_millis(at_ms),
        )
    }

    #[test]
    fn count_window_triggers_on_nth_event() {
        let mut w = Window::new(WindowSpec::count(3));
        let now = Time::from_secs(1);
        assert!(!w.push(ev(0, 0), now));
        assert!(!w.push(ev(1, 0), now));
        assert!(w.push(ev(2, 0), now), "third event triggers");
        let snap = w.snapshot(now);
        assert_eq!(snap.len(), 3);
        assert!(w.is_empty(), "disjoint batches clear");
        assert!(!w.push(ev(3, 0), now), "counter restarted");
    }

    #[test]
    fn count_window_of_one_fires_every_event() {
        // The intrusion-detection wiring of Listing 1.
        let mut w = Window::new(WindowSpec::count(1));
        for seq in 0..5 {
            assert!(w.push(ev(seq, 0), Time::ZERO));
            assert_eq!(w.snapshot(Time::ZERO).len(), 1);
        }
    }

    #[test]
    fn time_window_needs_timer_and_collects_span() {
        let spec = WindowSpec::time(Duration::from_secs(60));
        let mut w = Window::new(spec);
        assert_eq!(w.timer_period(), Some(Duration::from_secs(60)));
        let now = Time::from_secs(30);
        assert!(
            !w.push(ev(0, 1_000), now),
            "time windows never count-trigger"
        );
        assert!(!w.push(ev(1, 20_000), now));
        let snap = w.snapshot(Time::from_secs(60));
        assert_eq!(snap.len(), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn span_bound_drops_stale_events_on_push() {
        let spec = WindowSpec::time(Duration::from_secs(10));
        let mut w = Window::new(spec);
        let _ = w.push(ev(0, 0), Time::from_secs(1));
        let _ = w.push(ev(1, 14_000), Time::from_secs(15));
        // Event 0 is 15s old > 10s span: dropped by the bound.
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn count_bound_drops_oldest() {
        let mut w = Window::new(WindowSpec::count(5).with_trigger(TriggerPolicy::OnCount(100)));
        for seq in 0..8 {
            let _ = w.push(ev(seq, 0), Time::ZERO);
        }
        assert_eq!(w.len(), 5);
        let snap = w.snapshot(Time::ZERO);
        assert_eq!(snap.first().unwrap().id.seq, 3, "oldest three dropped");
    }

    #[test]
    fn sliding_window_keeps_buffer_across_triggers() {
        // Median-of-last-N surveillance pattern (§6.1): buffer 4,
        // trigger per event, never clear.
        let spec = WindowSpec::count(4)
            .sliding()
            .with_trigger(TriggerPolicy::OnCount(1))
            .with_evictor(EvictorPolicy::KeepLast(4));
        let mut w = Window::new(Window::new(spec.clone()).spec().clone());
        let mut sizes = Vec::new();
        for seq in 0..6 {
            assert!(w.push(ev(seq, 0), Time::ZERO));
            sizes.push(w.snapshot(Time::ZERO).len());
        }
        assert_eq!(sizes, vec![1, 2, 3, 4, 4, 4]);
        assert_eq!(w.len(), 4, "buffer retained");
    }

    #[test]
    fn keep_within_evictor_prunes_at_snapshot() {
        let spec = WindowSpec::count(100)
            .with_trigger(TriggerPolicy::OnCount(100))
            .with_evictor(EvictorPolicy::KeepWithin(Duration::from_secs(5)));
        let mut w = Window::new(spec);
        let _ = w.push(ev(0, 0), Time::from_millis(1));
        let _ = w.push(ev(1, 7_000), Time::from_millis(7_001));
        let snap = w.snapshot(Time::from_secs(8));
        assert_eq!(snap.len(), 1, "event 0 older than 5s evicted");
        assert_eq!(snap[0].id.seq, 1);
    }

    #[test]
    #[should_panic(expected = "count window needs a positive count")]
    fn zero_count_window_panics() {
        let _ = WindowSpec::count(0);
    }

    #[test]
    #[should_panic(expected = "time window needs a positive span")]
    fn zero_time_window_panics() {
        let _ = WindowSpec::time(Duration::ZERO);
    }
}
