//! The in-logic-node execution engine.
//!
//! [`AppRuntime`] is the machinery inside an *active* logic node: it
//! buffers delivered events into per-(operator, stream) windows,
//! evaluates triggers and combiners, invokes handler logic, and
//! cascades emitted values through the operator DAG. Shadow logic
//! nodes hold no runtime — they are placeholders (§3.3); a promotion
//! constructs a fresh runtime and replays outstanding events into it.

use std::collections::HashMap;
use std::sync::Arc;

use rivulet_types::{Duration, Event, EventId, EventKind, OperatorId, Payload, SensorId, Time};

use super::graph::{AppError, AppSpec};
use super::operator::{CombinedWindows, InputWindow, OpCtx, OpOutput, StreamKey};
use super::window::Window;

/// An output produced by the runtime, attributed to its operator.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOutput {
    /// The operator that produced the output.
    pub operator: OperatorId,
    /// The output itself.
    pub output: OpOutput,
}

/// Synthetic sensor-id namespace for operator emissions (events flowing
/// on operator→operator edges). Kept well above realistic device ids.
const DERIVED_SENSOR_BASE: u32 = 0x8000_0000;

/// The executable instantiation of an [`AppSpec`].
pub struct AppRuntime {
    spec: Arc<AppSpec>,
    windows: HashMap<(OperatorId, StreamKey), Window>,
    emit_seq: HashMap<OperatorId, u64>,
    events_processed: u64,
    stale_drops: u64,
}

impl std::fmt::Debug for AppRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppRuntime")
            .field("app", &self.spec.name)
            .field("windows", &self.windows.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl AppRuntime {
    /// Instantiates the runtime for `spec`.
    ///
    /// # Errors
    ///
    /// Returns an [`AppError`] if the graph is malformed.
    pub fn new(spec: Arc<AppSpec>) -> Result<Self, AppError> {
        spec.validate()?;
        let mut windows = HashMap::new();
        for op in &spec.operators {
            for input in &op.inputs {
                windows.insert(
                    (op.id, StreamKey::Sensor(input.sensor)),
                    Window::new(input.window.clone()),
                );
            }
            for (up, wspec) in &op.upstreams {
                windows.insert(
                    (op.id, StreamKey::Operator(*up)),
                    Window::new(wspec.clone()),
                );
            }
        }
        Ok(Self {
            spec,
            windows,
            emit_seq: HashMap::new(),
            events_processed: 0,
            stale_drops: 0,
        })
    }

    /// The app being executed.
    #[must_use]
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// Total events pushed into the runtime.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events rejected by a per-input staleness bound (§6).
    #[must_use]
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops
    }

    /// The time-triggered windows the host must arm repeating timers
    /// for: `(operator, stream, period)` triples.
    #[must_use]
    pub fn timer_streams(&self) -> Vec<(OperatorId, StreamKey, Duration)> {
        let mut out: Vec<(OperatorId, StreamKey, Duration)> = self
            .windows
            .iter()
            .filter_map(|((op, key), w)| w.timer_period().map(|d| (*op, *key, d)))
            .collect();
        out.sort_by_key(|(op, key, _)| (*op, *key));
        out
    }

    /// Whether any operator consumes `sensor`.
    #[must_use]
    pub fn subscribes_to(&self, sensor: SensorId) -> bool {
        self.windows
            .contains_key(&(OperatorId(0), StreamKey::Sensor(sensor)))
            || self
                .windows
                .keys()
                .any(|(_, key)| *key == StreamKey::Sensor(sensor))
    }

    /// Delivers a sensor event to every subscribing operator window,
    /// firing any count triggers (and cascading).
    pub fn on_event(&mut self, now: Time, event: &Event) -> Vec<RuntimeOutput> {
        self.events_processed += 1;
        let key = StreamKey::Sensor(event.id.sensor);
        let subscribers: Vec<(OperatorId, Option<Duration>)> = self
            .spec
            .operators
            .iter()
            .filter_map(|o| {
                o.inputs
                    .iter()
                    .find(|i| i.sensor == event.id.sensor)
                    .map(|i| (o.id, i.staleness_bound))
            })
            .collect();
        let mut outputs = Vec::new();
        for (op, bound) in subscribers {
            if let Some(bound) = bound {
                if event.staleness(now) > bound {
                    self.stale_drops += 1;
                    continue;
                }
            }
            let fired = self
                .windows
                .get_mut(&(op, key))
                .map(|w| w.push(event.clone(), now))
                .unwrap_or(false);
            if fired {
                self.fire(now, op, key, &mut outputs);
            }
        }
        outputs
    }

    /// A time trigger for `(operator, stream)` elapsed.
    pub fn on_time_trigger(
        &mut self,
        now: Time,
        operator: OperatorId,
        stream: StreamKey,
    ) -> Vec<RuntimeOutput> {
        let mut outputs = Vec::new();
        if self.windows.contains_key(&(operator, stream)) {
            self.fire(now, operator, stream, &mut outputs);
        }
        outputs
    }

    /// A Gapless poll-based input missed an entire epoch (§4.1's
    /// exception): inform every subscribing operator.
    pub fn on_epoch_miss(&mut self, now: Time, sensor: SensorId) -> Vec<RuntimeOutput> {
        let mut outputs = Vec::new();
        for op in &self.spec.operators {
            if op.inputs.iter().any(|i| i.sensor == sensor) {
                let mut ctx = OpCtx::new(now);
                op.logic.on_epoch_miss(&mut ctx, sensor);
                outputs.extend(ctx.into_outputs().into_iter().map(|output| RuntimeOutput {
                    operator: op.id,
                    output,
                }));
            }
        }
        outputs
    }

    /// Evaluates one trigger: snapshot the triggering stream, peek the
    /// others, consult the combiner, run the logic, route emissions.
    fn fire(
        &mut self,
        now: Time,
        operator: OperatorId,
        triggering: StreamKey,
        outputs: &mut Vec<RuntimeOutput>,
    ) {
        let op = self
            .spec
            .operator(operator)
            .expect("fire() on unknown operator")
            .clone();
        // Gather per-stream contributions.
        let mut inputs = Vec::new();
        let mut stream_keys: Vec<StreamKey> = op
            .inputs
            .iter()
            .map(|i| StreamKey::Sensor(i.sensor))
            .collect();
        stream_keys.extend(op.upstreams.iter().map(|(u, _)| StreamKey::Operator(*u)));
        for key in stream_keys {
            let window = self
                .windows
                .get_mut(&(operator, key))
                .expect("window exists");
            let events = if key == triggering {
                window.snapshot(now)
            } else {
                window.peek(now)
            };
            inputs.push(InputWindow {
                source: key,
                events,
            });
        }
        let combined = CombinedWindows { inputs };
        let total = combined.inputs.len();
        let available = combined.available_streams();
        let mut ctx = OpCtx::new(now);
        if available == 0 {
            // A time trigger elapsed in total silence.
            op.logic.on_silence(&mut ctx);
        } else if op.combiner.admits(available, total) {
            op.logic.on_windows(&mut ctx, &combined);
        } else {
            // Below the fault-tolerance quorum: suppress delivery.
            return;
        }
        for output in ctx.into_outputs() {
            match output {
                OpOutput::Emit { value } => {
                    outputs.push(RuntimeOutput {
                        operator,
                        output: OpOutput::Emit { value },
                    });
                    self.route_emission(now, operator, value, outputs);
                }
                other => outputs.push(RuntimeOutput {
                    operator,
                    output: other,
                }),
            }
        }
    }

    /// Pushes an emitted value into downstream operator windows.
    fn route_emission(
        &mut self,
        now: Time,
        from: OperatorId,
        value: f64,
        outputs: &mut Vec<RuntimeOutput>,
    ) {
        let seq = self.emit_seq.entry(from).or_insert(0);
        let event = Event::with_payload(
            EventId::new(SensorId(DERIVED_SENSOR_BASE | from.0), *seq),
            EventKind::Reading,
            Payload::Scalar(value),
            now,
        );
        *seq += 1;
        let key = StreamKey::Operator(from);
        let downstream: Vec<OperatorId> = self
            .spec
            .operators
            .iter()
            .filter(|o| o.upstreams.iter().any(|(u, _)| *u == from))
            .map(|o| o.id)
            .collect();
        for op in downstream {
            let fired = self
                .windows
                .get_mut(&(op, key))
                .map(|w| w.push(event.clone(), now))
                .unwrap_or(false);
            if fired {
                self.fire(now, op, key, outputs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::combiner::CombinerSpec;
    use crate::app::graph::AppBuilder;
    use crate::app::operator::{AlertOnEvent, MarzulloAverage, SwitchOnEvents, ThresholdHvac};
    use crate::app::window::WindowSpec;
    use crate::delivery::Delivery;
    use rivulet_types::{ActuatorId, AppId, CommandKind};

    fn ev(sensor: u32, seq: u64, kind: EventKind, value: Option<f64>) -> Event {
        let payload = value.map_or(Payload::Empty, Payload::Scalar);
        Event::with_payload(
            EventId::new(SensorId(sensor), seq),
            kind,
            payload,
            Time::from_millis(seq),
        )
    }

    /// The §3.2 door-light app end to end inside the runtime.
    #[test]
    fn door_light_pipeline() {
        let app = AppBuilder::new(AppId(1), "door-light")
            .operator(
                "TurnLightOnOff",
                CombinerSpec::Any,
                SwitchOnEvents {
                    on_kinds: vec![EventKind::DoorOpen],
                    off_kinds: vec![EventKind::DoorClose],
                    actuator: ActuatorId(1),
                },
            )
            .sensor(SensorId(1), Delivery::Gapless, WindowSpec::count(1))
            .actuator(ActuatorId(1), Delivery::Gapless)
            .done()
            .build()
            .unwrap();
        let mut rt = AppRuntime::new(Arc::new(app)).unwrap();
        let out = rt.on_event(Time::from_millis(1), &ev(1, 0, EventKind::DoorOpen, None));
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0].output,
            OpOutput::Actuate { actuator: ActuatorId(1), kind: CommandKind::Set(s) }
                if *s == rivulet_types::ActuationState::Switch(true)
        ));
        let out = rt.on_event(Time::from_millis(2), &ev(1, 1, EventKind::DoorClose, None));
        assert!(matches!(
            &out[0].output,
            OpOutput::Actuate { kind: CommandKind::Set(s), .. }
                if *s == rivulet_types::ActuationState::Switch(false)
        ));
        assert_eq!(rt.events_processed(), 2);
    }

    /// Listing 2's averaging chain: sensors → Marzullo avg → HVAC.
    #[test]
    fn averaging_cascades_to_hvac() {
        let builder = AppBuilder::new(AppId(2), "avg-hvac");
        let mut opb = builder.operator(
            "Averaging",
            CombinerSpec::tolerate_arbitrary(4),
            MarzulloAverage {
                precision: 0.5,
                tolerate: 1,
            },
        );
        for s in 0..4u32 {
            opb = opb.sensor(SensorId(s), Delivery::Gap, WindowSpec::count(1).sliding());
        }
        let app = opb.done();
        let avg = OperatorId(0);
        let app = app
            .operator(
                "Hvac",
                CombinerSpec::Any,
                ThresholdHvac {
                    low: 18.0,
                    high: 26.0,
                    hvac: ActuatorId(9),
                },
            )
            .upstream(avg, WindowSpec::count(1))
            .actuator(ActuatorId(9), Delivery::Gap)
            .done()
            .build()
            .unwrap();
        let mut rt = AppRuntime::new(Arc::new(app)).unwrap();
        // Three cold readings and one Byzantine outlier.
        let mut outputs = Vec::new();
        for (i, v) in [(0u32, 15.0), (1, 15.2), (2, 14.9), (3, 90.0)] {
            outputs = rt.on_event(
                Time::from_millis(u64::from(i)),
                &ev(i, 0, EventKind::Reading, Some(v)),
            );
        }
        // The final event triggers the average (count-1 sliding windows
        // fire on each event; by the fourth, all streams have data),
        // which emits ~15 and cascades into the HVAC setting 18.0.
        let emits: Vec<&RuntimeOutput> = outputs
            .iter()
            .filter(|o| matches!(o.output, OpOutput::Emit { .. }))
            .collect();
        assert!(!emits.is_empty(), "averaging emitted");
        let actuations: Vec<&RuntimeOutput> = outputs
            .iter()
            .filter(|o| matches!(o.output, OpOutput::Actuate { .. }))
            .collect();
        assert_eq!(actuations.len(), 1, "HVAC actuated once: {outputs:?}");
        assert!(matches!(
            &actuations[0].output,
            OpOutput::Actuate { actuator: ActuatorId(9), kind: CommandKind::Set(s) }
                if *s == rivulet_types::ActuationState::Level(18.0)
        ));
    }

    #[test]
    fn ft_combiner_blocks_below_quorum() {
        // Two sensors, FTCombiner(0): both streams must contribute.
        let app = AppBuilder::new(AppId(3), "strict")
            .operator(
                "needs-both",
                CombinerSpec::FaultTolerant { tolerate: 0 },
                AlertOnEvent {
                    message: "pair".into(),
                    siren: None,
                },
            )
            .sensor(SensorId(1), Delivery::Gap, WindowSpec::count(1).sliding())
            .sensor(SensorId(2), Delivery::Gap, WindowSpec::count(1).sliding())
            .done()
            .build()
            .unwrap();
        let mut rt = AppRuntime::new(Arc::new(app)).unwrap();
        let out = rt.on_event(Time::ZERO, &ev(1, 0, EventKind::Motion, None));
        assert!(out.is_empty(), "only one stream available: suppressed");
        // Second stream arrives: its trigger sees both.
        let out = rt.on_event(Time::ZERO, &ev(2, 0, EventKind::Motion, None));
        assert!(!out.is_empty(), "quorum met");
    }

    #[test]
    fn time_trigger_and_silence_path() {
        use crate::app::operator::InactivityAlert;
        let app = AppBuilder::new(AppId(4), "inactive")
            .operator(
                "watch",
                CombinerSpec::Any,
                InactivityAlert {
                    message: "no activity today".into(),
                },
            )
            .sensor(
                SensorId(1),
                Delivery::Gapless,
                WindowSpec::time(Duration::from_secs(60)),
            )
            .done()
            .build()
            .unwrap();
        let mut rt = AppRuntime::new(Arc::new(app)).unwrap();
        let timers = rt.timer_streams();
        assert_eq!(timers.len(), 1);
        let (op, stream, period) = timers[0];
        assert_eq!(period, Duration::from_secs(60));
        // Window elapses empty → silence alert.
        let out = rt.on_time_trigger(Time::from_secs(60), op, stream);
        assert!(
            matches!(&out[0].output, OpOutput::Alert { message } if message.contains("no activity"))
        );
        // With recent activity (emitted within the 60 s span), no alert.
        let _ = rt.on_event(Time::from_secs(70), &ev(1, 70_000, EventKind::Motion, None));
        let out = rt.on_time_trigger(Time::from_secs(120), op, stream);
        assert!(out.is_empty());
    }

    #[test]
    fn epoch_miss_reaches_subscribers_only() {
        struct MissLogic;
        impl crate::app::operator::OperatorLogic for MissLogic {
            fn on_windows(&self, _: &mut OpCtx, _: &CombinedWindows) {}
            fn on_epoch_miss(&self, ctx: &mut OpCtx, sensor: SensorId) {
                ctx.alert(format!("missed epoch of {sensor}"));
            }
        }
        let app = AppBuilder::new(AppId(5), "miss")
            .operator("m", CombinerSpec::Any, MissLogic)
            .sensor(SensorId(7), Delivery::Gapless, WindowSpec::count(1))
            .done()
            .build()
            .unwrap();
        let mut rt = AppRuntime::new(Arc::new(app)).unwrap();
        let out = rt.on_epoch_miss(Time::ZERO, SensorId(7));
        assert_eq!(out.len(), 1);
        assert!(
            rt.on_epoch_miss(Time::ZERO, SensorId(8)).is_empty(),
            "not subscribed"
        );
    }

    #[test]
    fn staleness_bound_rejects_old_events() {
        let app = AppBuilder::new(AppId(7), "fresh-only")
            .operator(
                "op",
                CombinerSpec::Any,
                AlertOnEvent {
                    message: "x".into(),
                    siren: None,
                },
            )
            .sensor(SensorId(1), Delivery::Gap, WindowSpec::count(1))
            .staleness_bound(Duration::from_secs(5))
            .done()
            .build()
            .unwrap();
        let mut rt = AppRuntime::new(Arc::new(app)).unwrap();
        // Fresh event (emitted 1s ago): accepted.
        let fresh = ev(1, 9_000, EventKind::Motion, None);
        let out = rt.on_event(Time::from_secs(10), &fresh);
        assert_eq!(out.len(), 1);
        // Stale event (emitted 20s ago): dropped before the window.
        let stale = ev(1, 0, EventKind::Motion, None);
        let out = rt.on_event(Time::from_secs(20), &stale);
        assert!(out.is_empty());
        assert_eq!(rt.stale_drops(), 1);
    }

    #[test]
    fn subscribes_to_reports_wiring() {
        let app = AppBuilder::new(AppId(6), "subs")
            .operator(
                "op",
                CombinerSpec::Any,
                AlertOnEvent {
                    message: "x".into(),
                    siren: None,
                },
            )
            .sensor(SensorId(3), Delivery::Gap, WindowSpec::count(1))
            .done()
            .build()
            .unwrap();
        let rt = AppRuntime::new(Arc::new(app)).unwrap();
        assert!(rt.subscribes_to(SensorId(3)));
        assert!(!rt.subscribes_to(SensorId(4)));
    }
}
