//! The application survey of Table 1.
//!
//! Thirteen representative smart-home applications with their primary
//! function, sensor types, category, and the delivery guarantee the
//! paper's study found they require. The `figures` harness renders
//! this as Table 1; the entries also serve as ready-made workloads.

use crate::delivery::Delivery;

/// Application category from the survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppCategory {
    /// Energy/comfort efficiency.
    Efficiency,
    /// User convenience.
    Convenience,
    /// Elder care.
    ElderCare,
    /// Life/property safety.
    Safety,
    /// Billing accuracy.
    Billing,
}

impl std::fmt::Display for AppCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AppCategory::Efficiency => "Efficiency",
            AppCategory::Convenience => "Convenience",
            AppCategory::ElderCare => "Elder care",
            AppCategory::Safety => "Safety",
            AppCategory::Billing => "Billing",
        };
        f.write_str(s)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct AppCatalogEntry {
    /// Application name.
    pub name: &'static str,
    /// Primary function.
    pub function: &'static str,
    /// Sensor types consumed.
    pub sensors: &'static str,
    /// Category.
    pub category: AppCategory,
    /// Required delivery guarantee.
    pub delivery: Delivery,
}

/// The Table 1 rows.
#[must_use]
pub fn table1() -> Vec<AppCatalogEntry> {
    use AppCategory::*;
    use Delivery::*;
    vec![
        AppCatalogEntry {
            name: "Occupancy-based HVAC",
            function: "Set the thermostat set-point based on occupancy",
            sensors: "occupancy",
            category: Efficiency,
            delivery: Gap,
        },
        AppCatalogEntry {
            name: "User-based HVAC",
            function: "Set the thermostat set-point based on the user's clothing level",
            sensors: "camera",
            category: Efficiency,
            delivery: Gap,
        },
        AppCatalogEntry {
            name: "Automated lighting",
            function: "Turn on lights if user is present",
            sensors: "occupancy, camera, microphone",
            category: Convenience,
            delivery: Gap,
        },
        AppCatalogEntry {
            name: "Appliance alert",
            function: "Alert user if appliance is left on while home is unoccupied",
            sensors: "appliance, whole-house energy",
            category: Efficiency,
            delivery: Gap,
        },
        AppCatalogEntry {
            name: "Activity tracking",
            function: "Periodically infer physical activity using microphone frames",
            sensors: "microphone",
            category: Convenience,
            delivery: Gap,
        },
        AppCatalogEntry {
            name: "Fall alert",
            function: "Issue alert on a fall-detected event",
            sensors: "wearables",
            category: ElderCare,
            delivery: Gapless,
        },
        AppCatalogEntry {
            name: "Inactive alert",
            function: "Issue alert if motion/activity not detected",
            sensors: "motion, door-open",
            category: ElderCare,
            delivery: Gapless,
        },
        AppCatalogEntry {
            name: "Flood/fire alert",
            function: "Issue alert on a water (or fire) detected event",
            sensors: "water, smoke",
            category: Safety,
            delivery: Gapless,
        },
        AppCatalogEntry {
            name: "Intrusion-detection",
            function: "Record image/issue alert on a door/window-open event",
            sensors: "door-window",
            category: Safety,
            delivery: Gapless,
        },
        AppCatalogEntry {
            name: "Energy billing",
            function: "Update energy cost on a power-consumption event",
            sensors: "whole-house energy",
            category: Billing,
            delivery: Gapless,
        },
        AppCatalogEntry {
            name: "Temperature-based HVAC",
            function: "Actuate heating/cooling if temperature crosses a threshold",
            sensors: "temperature",
            category: Efficiency,
            delivery: Gapless,
        },
        AppCatalogEntry {
            name: "Air (or light) monitoring",
            function: "Issue alert if CO2/CO level surpasses a threshold",
            sensors: "CO, CO2",
            category: Safety,
            delivery: Gapless,
        },
        AppCatalogEntry {
            name: "Surveillance",
            function: "Record image if it has an unknown object",
            sensors: "camera",
            category: Safety,
            delivery: Gapless,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_as_in_the_paper() {
        assert_eq!(table1().len(), 13);
    }

    #[test]
    fn delivery_split_matches_paper() {
        let rows = table1();
        let gap = rows.iter().filter(|r| r.delivery == Delivery::Gap).count();
        let gapless = rows
            .iter()
            .filter(|r| r.delivery == Delivery::Gapless)
            .count();
        assert_eq!(gap, 5);
        assert_eq!(gapless, 8);
    }

    #[test]
    fn safety_and_elder_care_are_always_gapless() {
        for row in table1() {
            if matches!(row.category, AppCategory::Safety | AppCategory::ElderCare) {
                assert_eq!(
                    row.delivery,
                    Delivery::Gapless,
                    "{} must not tolerate gaps",
                    row.name
                );
            }
        }
    }

    #[test]
    fn categories_render() {
        assert_eq!(AppCategory::ElderCare.to_string(), "Elder care");
        assert_eq!(AppCategory::Billing.to_string(), "Billing");
    }
}
