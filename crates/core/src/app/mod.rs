//! The Rivulet programming model (§6): apps as DAGs of operators over
//! windows, with declarative delivery guarantees and fault-tolerance
//! assumptions.

pub mod catalog;
pub mod combiner;
pub mod graph;
pub mod operator;
pub mod runtime;
pub mod window;

pub use combiner::{marzullo, marzullo_midpoint, CombinerSpec};
pub use graph::{AppBuilder, AppError, AppSpec, InputSpec, OperatorSpec, PollSpec};
pub use operator::{
    AlertOnEvent, CombinedWindows, InactivityAlert, InputWindow, LogicHandle, MarzulloAverage,
    OpCtx, OpOutput, OperatorLogic, StreamKey, SwitchOnEvents, ThresholdHvac,
};
pub use runtime::{AppRuntime, RuntimeOutput};
pub use window::{EvictorPolicy, TriggerPolicy, Window, WindowBound, WindowSpec};
