//! Combiners: how triggered windows from multiple inputs merge (§6.1).
//!
//! An operator with several input streams declares how they combine
//! before delivery. [`CombinerSpec::FaultTolerant`] is the paper's
//! `FTCombiner(f)`: the operator keeps receiving combined windows as
//! long as at most `f` input streams are silent — the declarative
//! fault-tolerance knob of Listings 1 and 2. This module also provides
//! Marzullo's interval-intersection algorithm for fault-tolerant sensor
//! averaging (§6.2).

/// How an operator's input streams combine at trigger time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinerSpec {
    /// Deliver only when *every* input stream contributed events.
    All,
    /// Deliver whenever any input triggers, with whatever is available.
    Any,
    /// The paper's `FTCombiner(f)`: deliver when at least
    /// `k − tolerate` of the `k` input streams contributed events.
    FaultTolerant {
        /// Number of silent input streams the operator tolerates.
        tolerate: usize,
    },
}

impl CombinerSpec {
    /// Whether delivery should proceed given `available` of `total`
    /// input streams holding data.
    #[must_use]
    pub fn admits(&self, available: usize, total: usize) -> bool {
        debug_assert!(available <= total);
        if available == 0 {
            return false;
        }
        match self {
            CombinerSpec::All => available == total,
            CombinerSpec::Any => true,
            CombinerSpec::FaultTolerant { tolerate } => {
                available >= total.saturating_sub(*tolerate)
            }
        }
    }

    /// `FTCombiner(n−1)`: tolerate all-but-one fail-stop sensors, the
    /// intrusion-detection setting of Listing 1.
    #[must_use]
    pub fn tolerate_fail_stop(n: usize) -> Self {
        CombinerSpec::FaultTolerant {
            tolerate: n.saturating_sub(1),
        }
    }

    /// `FTCombiner(⌊(n−1)/3⌋)`: tolerate arbitrary (Byzantine) sensor
    /// failures per Marzullo, the averaging setting of Listing 2.
    #[must_use]
    pub fn tolerate_arbitrary(n: usize) -> Self {
        CombinerSpec::FaultTolerant {
            tolerate: n.saturating_sub(1) / 3,
        }
    }
}

/// Marzullo's fault-tolerant interval intersection.
///
/// Given `n` interval readings of which at most `f` may be faulty,
/// returns `[l, u]` where `l` is the smallest value contained in at
/// least `n − f` intervals and `u` the largest such value — the
/// fault-tolerant "average" of §6.2. Returns `None` when no value is
/// covered by `n − f` intervals (more than `f` sensors disagree) or
/// when `f >= n`.
#[must_use]
pub fn marzullo(intervals: &[(f64, f64)], f: usize) -> Option<(f64, f64)> {
    let n = intervals.len();
    if n == 0 || f >= n {
        return None;
    }
    let quorum = n - f;
    // Sweep over endpoints: +1 at starts, -1 after ends.
    let mut points: Vec<(f64, i32)> = Vec::with_capacity(2 * n);
    for &(lo, hi) in intervals {
        debug_assert!(lo <= hi, "malformed interval");
        points.push((lo, 1));
        points.push((hi, -1));
    }
    // At equal coordinates, process starts before ends (closed
    // intervals: a point equal to one start and another end belongs to
    // both).
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaNs").then(b.1.cmp(&a.1)));
    let mut count = 0;
    let mut lower = None;
    let mut upper = None;
    for &(x, delta) in &points {
        let before = count;
        count += delta;
        if delta > 0 && before < quorum as i32 && count >= quorum as i32 && lower.is_none() {
            lower = Some(x);
        }
        if delta < 0 && before >= quorum as i32 && count < quorum as i32 {
            upper = Some(x); // last such crossing wins
        }
    }
    match (lower, upper) {
        (Some(l), Some(u)) if l <= u => Some((l, u)),
        _ => None,
    }
}

/// Convenience: fault-tolerant midpoint of scalar readings, each
/// widened to `value ± precision`, tolerating `f` faulty sensors.
#[must_use]
pub fn marzullo_midpoint(values: &[f64], precision: f64, f: usize) -> Option<f64> {
    let intervals: Vec<(f64, f64)> = values
        .iter()
        .map(|v| (v - precision, v + precision))
        .collect();
    marzullo(&intervals, f).map(|(l, u)| (l + u) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_requires_every_stream() {
        assert!(CombinerSpec::All.admits(3, 3));
        assert!(!CombinerSpec::All.admits(2, 3));
        assert!(!CombinerSpec::All.admits(0, 3));
    }

    #[test]
    fn any_requires_one() {
        assert!(CombinerSpec::Any.admits(1, 5));
        assert!(!CombinerSpec::Any.admits(0, 5));
    }

    #[test]
    fn ft_combiner_threshold() {
        let ft = CombinerSpec::FaultTolerant { tolerate: 2 };
        assert!(ft.admits(3, 5));
        assert!(ft.admits(5, 5));
        assert!(!ft.admits(2, 5));
        // Even tolerate >= total still needs one stream with data.
        let lax = CombinerSpec::FaultTolerant { tolerate: 9 };
        assert!(lax.admits(1, 3));
        assert!(!lax.admits(0, 3));
    }

    #[test]
    fn listing_presets() {
        // Listing 1: n-1 fail-stop tolerance.
        assert_eq!(
            CombinerSpec::tolerate_fail_stop(4),
            CombinerSpec::FaultTolerant { tolerate: 3 }
        );
        // Listing 2: ⌊(n−1)/3⌋ arbitrary tolerance.
        assert_eq!(
            CombinerSpec::tolerate_arbitrary(4),
            CombinerSpec::FaultTolerant { tolerate: 1 }
        );
        assert_eq!(
            CombinerSpec::tolerate_arbitrary(10),
            CombinerSpec::FaultTolerant { tolerate: 3 }
        );
        assert_eq!(
            CombinerSpec::tolerate_arbitrary(1),
            CombinerSpec::FaultTolerant { tolerate: 0 }
        );
    }

    #[test]
    fn marzullo_agreeing_sensors() {
        // Three overlapping readings, tolerate one fault.
        let intervals = [(20.0, 22.0), (20.5, 22.5), (21.0, 23.0)];
        let (l, u) = marzullo(&intervals, 1).expect("quorum exists");
        // Values in ≥2 intervals: [20.5, 22.5].
        assert_eq!((l, u), (20.5, 22.5));
    }

    #[test]
    fn marzullo_outlier_is_masked() {
        // One wild sensor; with f=1 the result ignores it.
        let intervals = [(20.0, 22.0), (20.5, 22.5), (95.0, 97.0)];
        let (l, u) = marzullo(&intervals, 1).expect("quorum exists");
        assert_eq!((l, u), (20.5, 22.0));
        // With f=0 the three must all overlap — they don't.
        assert_eq!(marzullo(&intervals, 0), None);
    }

    #[test]
    fn marzullo_single_sensor() {
        assert_eq!(marzullo(&[(1.0, 2.0)], 0), Some((1.0, 2.0)));
        assert_eq!(marzullo(&[(1.0, 2.0)], 1), None, "f >= n");
        assert_eq!(marzullo(&[], 0), None);
    }

    #[test]
    fn marzullo_touching_endpoints_count_as_overlap() {
        // Closed intervals sharing exactly one point.
        let intervals = [(1.0, 2.0), (2.0, 3.0)];
        assert_eq!(marzullo(&intervals, 0), Some((2.0, 2.0)));
    }

    #[test]
    fn marzullo_midpoint_masks_byzantine_reading() {
        // Temperatures ~21 plus one Byzantine 85; f = ⌊(4-1)/3⌋ = 1.
        let mid = marzullo_midpoint(&[20.8, 21.0, 21.2, 85.0], 0.5, 1).expect("works");
        assert!((20.0..=22.0).contains(&mid), "midpoint {mid}");
    }

    #[test]
    fn marzullo_disjoint_majority() {
        // Two camps, f too small to pick either.
        let intervals = [(1.0, 2.0), (1.2, 2.2), (10.0, 11.0), (10.2, 11.2)];
        assert_eq!(marzullo(&intervals, 1), None, "no 3-quorum anywhere");
        // With f=2 the paper's definition spans from the smallest to
        // the largest 2-quorum-covered value — bridging both camps and
        // honestly reporting the huge uncertainty.
        let (l, u) = marzullo(&intervals, 2).expect("2-quorum exists");
        assert_eq!((l, u), (1.2, 11.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn interval() -> impl Strategy<Value = (f64, f64)> {
        (-100.0f64..100.0, 0.0f64..10.0).prop_map(|(lo, w)| (lo, lo + w))
    }

    proptest! {
        /// Every point in the returned range really is covered by
        /// ≥ n−f intervals, and the bounds are tight (coverage at l
        /// and u themselves).
        #[test]
        fn marzullo_result_is_quorum_covered(
            intervals in proptest::collection::vec(interval(), 1..12),
            f in 0usize..4,
        ) {
            prop_assume!(f < intervals.len());
            let quorum = intervals.len() - f;
            let cover = |x: f64| {
                intervals.iter().filter(|(lo, hi)| *lo <= x && x <= *hi).count()
            };
            if let Some((l, u)) = marzullo(&intervals, f) {
                prop_assert!(l <= u);
                prop_assert!(cover(l) >= quorum, "lower bound not covered");
                prop_assert!(cover(u) >= quorum, "upper bound not covered");
            } else {
                // No point should be quorum-covered: check endpoints,
                // which are the only candidates for coverage changes.
                for (lo, hi) in &intervals {
                    prop_assert!(cover(*lo) < quorum);
                    prop_assert!(cover(*hi) < quorum);
                }
            }
        }

        /// Increasing f never shrinks the returned interval: tolerating
        /// more faults can only widen (or keep) the answer.
        #[test]
        fn marzullo_monotone_in_f(
            intervals in proptest::collection::vec(interval(), 2..10),
        ) {
            let mut wider: Option<(f64, f64)> = None; // result at larger f
            for f in (0..intervals.len()).rev() {
                let cur = marzullo(&intervals, f);
                if let (Some((cl, cu)), Some((wl, wu))) = (cur, wider) {
                    prop_assert!(wl <= cl + 1e-9 && cu <= wu + 1e-9,
                        "smaller f must be contained in larger f's interval");
                }
                if cur.is_some() {
                    wider = cur;
                }
            }
        }
    }
}
