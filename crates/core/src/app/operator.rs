//! Operators: the application logic units inside a logic node (§6).
//!
//! A logic node comprises operators connected as a DAG. Each operator
//! receives *combined windows* from its input streams (sensors or
//! upstream operators), runs arbitrary handler logic, and emits
//! actuation commands, downstream values, or user alerts through its
//! [`OpCtx`].

use std::fmt;
use std::sync::Arc;

use rivulet_types::{
    ActuationState, ActuatorId, CommandKind, Event, EventKind, OperatorId, RoutineId, SensorId,
    Time,
};

/// Identifies one input stream of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamKey {
    /// Events from a physical sensor.
    Sensor(SensorId),
    /// Values emitted by an upstream operator in the same logic node.
    Operator(OperatorId),
}

impl fmt::Display for StreamKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamKey::Sensor(s) => write!(f, "{s}"),
            StreamKey::Operator(o) => write!(f, "{o}"),
        }
    }
}

/// One input stream's triggered window contents.
#[derive(Debug, Clone, PartialEq)]
pub struct InputWindow {
    /// Which stream contributed these events.
    pub source: StreamKey,
    /// The snapshot (possibly empty for silent streams).
    pub events: Vec<Event>,
}

/// What an operator sees per trigger: one window per input stream,
/// merged according to its combiner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CombinedWindows {
    /// Per-stream snapshots; silent streams appear with empty vectors
    /// so handlers can tell "no data" from "stream not wired".
    pub inputs: Vec<InputWindow>,
}

impl CombinedWindows {
    /// The events of stream `key`, empty if absent.
    #[must_use]
    pub fn events_of(&self, key: StreamKey) -> &[Event] {
        self.inputs
            .iter()
            .find(|w| w.source == key)
            .map_or(&[], |w| w.events.as_slice())
    }

    /// Iterates over every event across all streams.
    pub fn all_events(&self) -> impl Iterator<Item = &Event> {
        self.inputs.iter().flat_map(|w| w.events.iter())
    }

    /// All scalar values across all streams (skipping non-scalar
    /// payloads).
    #[must_use]
    pub fn scalars(&self) -> Vec<f64> {
        self.all_events()
            .filter_map(|e| e.payload.as_scalar())
            .collect()
    }

    /// Number of streams that contributed at least one event.
    #[must_use]
    pub fn available_streams(&self) -> usize {
        self.inputs.iter().filter(|w| !w.events.is_empty()).count()
    }
}

/// An output requested by operator logic.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// Command an actuator.
    Actuate {
        /// Target actuator.
        actuator: ActuatorId,
        /// Set or Test&Set.
        kind: CommandKind,
    },
    /// Emit a scalar to downstream operators.
    Emit {
        /// The value.
        value: f64,
    },
    /// Notify the user (caregiver alert, billing update, …).
    Alert {
        /// Human-readable message.
        message: String,
    },
    /// Fire a deployed routine: an ordered multi-actuator command
    /// sequence executed all-or-nothing by the routine engine. Ignored
    /// (silently, with no observable side effects) when
    /// [`crate::config::RivuletConfig::routines`] is off or the id is
    /// not deployed.
    RunRoutine {
        /// The routine spec to fire.
        routine: RoutineId,
    },
}

/// The capability surface handed to operator logic per trigger.
#[derive(Debug)]
pub struct OpCtx {
    now: Time,
    outputs: Vec<OpOutput>,
}

impl OpCtx {
    /// Creates a context at `now`.
    #[must_use]
    pub fn new(now: Time) -> Self {
        Self {
            now,
            outputs: Vec::new(),
        }
    }

    /// Current time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Unconditionally sets a switch actuator (idempotent actuation).
    pub fn set_switch(&mut self, actuator: ActuatorId, on: bool) {
        self.outputs.push(OpOutput::Actuate {
            actuator,
            kind: CommandKind::Set(ActuationState::Switch(on)),
        });
    }

    /// Unconditionally sets a level actuator (thermostat set-point).
    pub fn set_level(&mut self, actuator: ActuatorId, level: f64) {
        self.outputs.push(OpOutput::Actuate {
            actuator,
            kind: CommandKind::Set(ActuationState::Level(level)),
        });
    }

    /// Issues a `Test&Set` for non-idempotent actuations (§5).
    pub fn test_and_set(
        &mut self,
        actuator: ActuatorId,
        expected: ActuationState,
        desired: ActuationState,
    ) {
        self.outputs.push(OpOutput::Actuate {
            actuator,
            kind: CommandKind::TestAndSet { expected, desired },
        });
    }

    /// Emits a scalar to downstream operators.
    pub fn emit(&mut self, value: f64) {
        self.outputs.push(OpOutput::Emit { value });
    }

    /// Raises a user-facing alert.
    pub fn alert(&mut self, message: impl Into<String>) {
        self.outputs.push(OpOutput::Alert {
            message: message.into(),
        });
    }

    /// Fires a deployed routine (all-or-nothing multi-actuator
    /// sequence). A no-op when the routine engine is disabled.
    pub fn run_routine(&mut self, routine: RoutineId) {
        self.outputs.push(OpOutput::RunRoutine { routine });
    }

    /// Consumes the context, yielding the requested outputs.
    #[must_use]
    pub fn into_outputs(self) -> Vec<OpOutput> {
        self.outputs
    }
}

/// Handler logic of one operator — the code a Rivulet developer writes
/// (`handleTriggeredWindow` of Table 2).
pub trait OperatorLogic: Send + Sync {
    /// Called with combined windows when the operator's trigger and
    /// combiner admit a delivery.
    fn on_windows(&self, ctx: &mut OpCtx, input: &CombinedWindows);

    /// Called when a time-triggered input fired with *no* events
    /// admitted (all streams silent). Default: ignore. Inactivity
    /// detectors override this (Table 1's "Inactive alert").
    fn on_silence(&self, _ctx: &mut OpCtx) {}

    /// Called when a Gapless poll-based input missed an entire epoch —
    /// the paper's exception path (§4.1). Default: ignore.
    fn on_epoch_miss(&self, _ctx: &mut OpCtx, _sensor: SensorId) {}
}

impl<F> OperatorLogic for F
where
    F: Fn(&mut OpCtx, &CombinedWindows) + Send + Sync,
{
    fn on_windows(&self, ctx: &mut OpCtx, input: &CombinedWindows) {
        self(ctx, input);
    }
}

/// Built-in logic: map trigger kinds to a switch actuator — the
/// `TurnLightOnOff` of §3.2.
#[derive(Debug, Clone)]
pub struct SwitchOnEvents {
    /// Kinds that switch the actuator on.
    pub on_kinds: Vec<EventKind>,
    /// Kinds that switch it off.
    pub off_kinds: Vec<EventKind>,
    /// The actuator to drive.
    pub actuator: ActuatorId,
}

impl OperatorLogic for SwitchOnEvents {
    fn on_windows(&self, ctx: &mut OpCtx, input: &CombinedWindows) {
        for event in input.all_events() {
            if self.on_kinds.contains(&event.kind) {
                ctx.set_switch(self.actuator, true);
            } else if self.off_kinds.contains(&event.kind) {
                ctx.set_switch(self.actuator, false);
            }
        }
    }
}

/// Built-in logic: alert (and optionally sound a siren) on every event
/// — intrusion detection, fall alert, flood/fire alert (Table 1).
#[derive(Debug, Clone)]
pub struct AlertOnEvent {
    /// Alert text; the triggering event is appended.
    pub message: String,
    /// Optional siren to switch on.
    pub siren: Option<ActuatorId>,
}

impl OperatorLogic for AlertOnEvent {
    fn on_windows(&self, ctx: &mut OpCtx, input: &CombinedWindows) {
        for event in input.all_events() {
            ctx.alert(format!("{}: {}", self.message, event));
            if let Some(siren) = self.siren {
                ctx.set_switch(siren, true);
            }
        }
    }
}

/// Built-in logic: fault-tolerant averaging via Marzullo intervals —
/// the `Averaging` operator of Listing 2. Emits the fault-tolerant
/// midpoint downstream, or alerts if no quorum exists.
#[derive(Debug, Clone)]
pub struct MarzulloAverage {
    /// Half-width of the interval around each reading (sensor
    /// precision).
    pub precision: f64,
    /// Faults tolerated (`⌊(n−1)/3⌋` for arbitrary failures).
    pub tolerate: usize,
}

impl OperatorLogic for MarzulloAverage {
    fn on_windows(&self, ctx: &mut OpCtx, input: &CombinedWindows) {
        // One representative (latest) reading per stream.
        let values: Vec<f64> = input
            .inputs
            .iter()
            .filter_map(|w| w.events.last())
            .filter_map(|e| e.payload.as_scalar())
            .collect();
        match super::combiner::marzullo_midpoint(&values, self.precision, self.tolerate) {
            Some(mid) => ctx.emit(mid),
            None => ctx.alert(format!(
                "sensor disagreement: no {}-of-{} quorum",
                values.len().saturating_sub(self.tolerate),
                values.len()
            )),
        }
    }
}

/// Built-in logic: threshold actuation on a scalar stream — the
/// temperature-based HVAC of Table 1 (heat below `low`, cool above
/// `high`).
#[derive(Debug, Clone)]
pub struct ThresholdHvac {
    /// Turn heating on below this.
    pub low: f64,
    /// Turn cooling on above this.
    pub high: f64,
    /// HVAC actuator: level = target temperature.
    pub hvac: ActuatorId,
}

impl OperatorLogic for ThresholdHvac {
    fn on_windows(&self, ctx: &mut OpCtx, input: &CombinedWindows) {
        if let Some(value) = input.scalars().last().copied() {
            if value < self.low {
                ctx.set_level(self.hvac, self.low);
            } else if value > self.high {
                ctx.set_level(self.hvac, self.high);
            }
        }
    }
}

/// Built-in logic: alert when a time window elapses with no activity —
/// the elder-care "Inactive alert" of Table 1.
#[derive(Debug, Clone)]
pub struct InactivityAlert {
    /// Alert text.
    pub message: String,
}

impl OperatorLogic for InactivityAlert {
    fn on_windows(&self, _ctx: &mut OpCtx, _input: &CombinedWindows) {
        // Activity observed: nothing to report.
    }

    fn on_silence(&self, ctx: &mut OpCtx) {
        ctx.alert(self.message.clone());
    }
}

/// Type-erased shared logic handle used in specs.
pub type LogicHandle = Arc<dyn OperatorLogic>;

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_types::{EventId, Payload};

    fn ev(kind: EventKind, value: Option<f64>, seq: u64) -> Event {
        let payload = value.map_or(Payload::Empty, Payload::Scalar);
        Event::with_payload(EventId::new(SensorId(1), seq), kind, payload, Time::ZERO)
    }

    fn windows_of(events: Vec<Event>) -> CombinedWindows {
        CombinedWindows {
            inputs: vec![InputWindow {
                source: StreamKey::Sensor(SensorId(1)),
                events,
            }],
        }
    }

    #[test]
    fn combined_windows_accessors() {
        let cw = CombinedWindows {
            inputs: vec![
                InputWindow {
                    source: StreamKey::Sensor(SensorId(1)),
                    events: vec![ev(EventKind::Reading, Some(1.5), 0)],
                },
                InputWindow {
                    source: StreamKey::Operator(OperatorId(9)),
                    events: vec![],
                },
            ],
        };
        assert_eq!(cw.events_of(StreamKey::Sensor(SensorId(1))).len(), 1);
        assert!(cw.events_of(StreamKey::Operator(OperatorId(9))).is_empty());
        assert!(cw.events_of(StreamKey::Sensor(SensorId(42))).is_empty());
        assert_eq!(cw.scalars(), vec![1.5]);
        assert_eq!(cw.available_streams(), 1);
        assert_eq!(cw.all_events().count(), 1);
    }

    #[test]
    fn switch_logic_maps_kinds() {
        let logic = SwitchOnEvents {
            on_kinds: vec![EventKind::DoorOpen],
            off_kinds: vec![EventKind::DoorClose],
            actuator: ActuatorId(4),
        };
        let mut ctx = OpCtx::new(Time::ZERO);
        logic.on_windows(
            &mut ctx,
            &windows_of(vec![
                ev(EventKind::DoorOpen, None, 0),
                ev(EventKind::DoorClose, None, 1),
                ev(EventKind::Motion, None, 2), // unrelated: ignored
            ]),
        );
        let out = ctx.into_outputs();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            OpOutput::Actuate {
                actuator: ActuatorId(4),
                kind: CommandKind::Set(ActuationState::Switch(true)),
            }
        );
        assert_eq!(
            out[1],
            OpOutput::Actuate {
                actuator: ActuatorId(4),
                kind: CommandKind::Set(ActuationState::Switch(false)),
            }
        );
    }

    #[test]
    fn alert_logic_alerts_per_event_and_sounds_siren() {
        let logic = AlertOnEvent {
            message: "intrusion".to_owned(),
            siren: Some(ActuatorId(2)),
        };
        let mut ctx = OpCtx::new(Time::ZERO);
        logic.on_windows(
            &mut ctx,
            &windows_of(vec![ev(EventKind::DoorOpen, None, 0)]),
        );
        let out = ctx.into_outputs();
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], OpOutput::Alert { message } if message.contains("intrusion")));
        assert!(matches!(
            out[1],
            OpOutput::Actuate {
                actuator: ActuatorId(2),
                ..
            }
        ));
    }

    #[test]
    fn marzullo_average_emits_midpoint_and_alerts_on_disagreement() {
        let logic = MarzulloAverage {
            precision: 0.5,
            tolerate: 1,
        };
        let agree = CombinedWindows {
            inputs: (0..4)
                .map(|i| InputWindow {
                    source: StreamKey::Sensor(SensorId(i)),
                    events: vec![ev(
                        EventKind::Reading,
                        Some(if i == 3 {
                            90.0
                        } else {
                            21.0 + f64::from(i) * 0.1
                        }),
                        0,
                    )],
                })
                .collect(),
        };
        let mut ctx = OpCtx::new(Time::ZERO);
        logic.on_windows(&mut ctx, &agree);
        let out = ctx.into_outputs();
        assert_eq!(out.len(), 1);
        let OpOutput::Emit { value } = out[0] else {
            panic!("expected emit")
        };
        assert!(
            (20.0..=22.0).contains(&value),
            "byzantine 90.0 masked, got {value}"
        );

        // All four disagree wildly with f=1: no quorum.
        let disagree = CombinedWindows {
            inputs: (0..4)
                .map(|i| InputWindow {
                    source: StreamKey::Sensor(SensorId(i)),
                    events: vec![ev(EventKind::Reading, Some(f64::from(i) * 50.0), 0)],
                })
                .collect(),
        };
        let mut ctx = OpCtx::new(Time::ZERO);
        logic.on_windows(&mut ctx, &disagree);
        assert!(matches!(&ctx.into_outputs()[0], OpOutput::Alert { .. }));
    }

    #[test]
    fn hvac_threshold_logic() {
        let logic = ThresholdHvac {
            low: 18.0,
            high: 26.0,
            hvac: ActuatorId(1),
        };
        for (reading, expect_level) in [(15.0, Some(18.0)), (30.0, Some(26.0)), (22.0, None)] {
            let mut ctx = OpCtx::new(Time::ZERO);
            logic.on_windows(
                &mut ctx,
                &windows_of(vec![ev(EventKind::Reading, Some(reading), 0)]),
            );
            let out = ctx.into_outputs();
            match expect_level {
                Some(level) => {
                    assert_eq!(
                        out,
                        vec![OpOutput::Actuate {
                            actuator: ActuatorId(1),
                            kind: CommandKind::Set(ActuationState::Level(level)),
                        }]
                    );
                }
                None => assert!(out.is_empty(), "comfortable band: no actuation"),
            }
        }
    }

    #[test]
    fn inactivity_alert_fires_only_on_silence() {
        let logic = InactivityAlert {
            message: "no activity".to_owned(),
        };
        let mut ctx = OpCtx::new(Time::ZERO);
        logic.on_windows(&mut ctx, &windows_of(vec![ev(EventKind::Motion, None, 0)]));
        assert!(ctx.into_outputs().is_empty());
        let mut ctx = OpCtx::new(Time::ZERO);
        logic.on_silence(&mut ctx);
        assert!(matches!(&ctx.into_outputs()[0], OpOutput::Alert { .. }));
    }

    #[test]
    fn closures_are_operator_logic() {
        let logic = |ctx: &mut OpCtx, input: &CombinedWindows| {
            ctx.emit(input.all_events().count() as f64);
        };
        let mut ctx = OpCtx::new(Time::ZERO);
        logic.on_windows(&mut ctx, &windows_of(vec![ev(EventKind::Motion, None, 0)]));
        assert_eq!(ctx.into_outputs(), vec![OpOutput::Emit { value: 1.0 }]);
    }

    #[test]
    fn opctx_test_and_set() {
        let mut ctx = OpCtx::new(Time::from_secs(1));
        assert_eq!(ctx.now(), Time::from_secs(1));
        ctx.test_and_set(
            ActuatorId(3),
            ActuationState::Pulse(0),
            ActuationState::Pulse(1),
        );
        assert!(matches!(
            ctx.into_outputs()[0],
            OpOutput::Actuate {
                kind: CommandKind::TestAndSet { .. },
                ..
            }
        ));
    }

    #[test]
    fn stream_key_display() {
        assert_eq!(StreamKey::Sensor(SensorId(1)).to_string(), "s1");
        assert_eq!(StreamKey::Operator(OperatorId(2)).to_string(), "op2");
    }
}
