//! Application graphs: the declarative wiring of §3.2 and §6.
//!
//! An app is a DAG with sensor, logic, and actuator nodes. Following
//! the paper's simplification ("an application program is encapsulated
//! into a single logic node"), an [`AppSpec`] is one logic node whose
//! *internal* operator DAG is explicit; each operator wires upstream
//! sensors (with a delivery guarantee, window, and optional polling
//! policy — Table 2's `addSensor`), upstream operators
//! (`addUpstreamOperator`), and downstream actuators (`addActuator`).

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use rivulet_types::{ActuatorId, AppId, Duration, OperatorId, SensorId};

use crate::delivery::polling::PollStrategy;
use crate::delivery::Delivery;

use super::operator::{LogicHandle, OperatorLogic};
use super::window::WindowSpec;

/// Polling policy for a poll-based sensor input (Table 2's optional
/// `PollingPolicy`).
#[derive(Debug, Clone, PartialEq)]
pub struct PollSpec {
    /// Epoch length: the app requires one event per epoch (§4).
    pub epoch: Duration,
    /// Scheduling strategy; `None` derives it from the delivery
    /// guarantee (Gapless → coordinated, Gap → single poller).
    pub strategy: Option<PollStrategy>,
}

impl PollSpec {
    /// One event required every `epoch`.
    #[must_use]
    pub fn every(epoch: Duration) -> Self {
        Self {
            epoch,
            strategy: None,
        }
    }

    /// Overrides the scheduling strategy (the Fig. 8 uncoordinated
    /// baseline uses this).
    #[must_use]
    pub fn with_strategy(mut self, strategy: PollStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// The effective strategy for a given delivery guarantee.
    #[must_use]
    pub fn effective_strategy(&self, delivery: Delivery) -> PollStrategy {
        self.strategy.unwrap_or(match delivery {
            Delivery::Gapless => PollStrategy::Coordinated,
            Delivery::Gap => PollStrategy::GapSingle,
        })
    }
}

/// One sensor input of an operator (`addSensor`).
#[derive(Debug, Clone)]
pub struct InputSpec {
    /// The sensor.
    pub sensor: SensorId,
    /// Gap or Gapless (§2.2).
    pub delivery: Delivery,
    /// Window buffering this stream.
    pub window: WindowSpec,
    /// Polling policy for poll-based sensors.
    pub poll: Option<PollSpec>,
    /// Upper bound on event staleness the app tolerates (§6): events
    /// older than this at delivery time are dropped before entering
    /// the window (and counted). `None` accepts any age — including
    /// backlog replayed after a failover.
    pub staleness_bound: Option<Duration>,
}

/// One operator of the app's internal DAG.
#[derive(Clone)]
pub struct OperatorSpec {
    /// Operator identity, unique within the app.
    pub id: OperatorId,
    /// Human-readable name.
    pub name: String,
    /// Sensor inputs.
    pub inputs: Vec<InputSpec>,
    /// Upstream operator inputs with their windows.
    pub upstreams: Vec<(OperatorId, WindowSpec)>,
    /// Combiner merging the triggered input windows.
    pub combiner: super::combiner::CombinerSpec,
    /// Handler logic.
    pub logic: LogicHandle,
    /// Actuators this operator drives, with the command delivery
    /// guarantee (`addActuator`).
    pub actuators: Vec<(ActuatorId, Delivery)>,
}

impl fmt::Debug for OperatorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OperatorSpec")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("upstreams", &self.upstreams)
            .field("combiner", &self.combiner)
            .field("actuators", &self.actuators)
            .finish_non_exhaustive()
    }
}

/// Errors detected while validating an app graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AppError {
    /// The app has no operators.
    Empty,
    /// Two operators share an id.
    DuplicateOperator(OperatorId),
    /// An upstream edge references an unknown operator.
    UnknownUpstream {
        /// The operator with the bad edge.
        at: OperatorId,
        /// The missing upstream.
        missing: OperatorId,
    },
    /// The operator graph has a cycle.
    Cyclic,
    /// An operator has no inputs at all.
    NoInputs(OperatorId),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Empty => write!(f, "app has no operators"),
            AppError::DuplicateOperator(id) => write!(f, "duplicate operator {id}"),
            AppError::UnknownUpstream { at, missing } => {
                write!(f, "operator {at} references unknown upstream {missing}")
            }
            AppError::Cyclic => write!(f, "operator graph has a cycle"),
            AppError::NoInputs(id) => write!(f, "operator {id} has no inputs"),
        }
    }
}

impl std::error::Error for AppError {}

/// A complete application: one logic node with an operator DAG.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// App identity.
    pub id: AppId,
    /// Human-readable name.
    pub name: String,
    /// The operators, in declaration order.
    pub operators: Vec<OperatorSpec>,
}

impl AppSpec {
    /// Validates the graph and computes a topological order of
    /// operators (upstreams before downstreams).
    ///
    /// # Errors
    ///
    /// Returns an [`AppError`] describing the first defect found.
    pub fn validate(&self) -> Result<Vec<OperatorId>, AppError> {
        if self.operators.is_empty() {
            return Err(AppError::Empty);
        }
        let mut ids = BTreeSet::new();
        for op in &self.operators {
            if !ids.insert(op.id) {
                return Err(AppError::DuplicateOperator(op.id));
            }
            if op.inputs.is_empty() && op.upstreams.is_empty() {
                return Err(AppError::NoInputs(op.id));
            }
        }
        for op in &self.operators {
            for (up, _) in &op.upstreams {
                if !ids.contains(up) {
                    return Err(AppError::UnknownUpstream {
                        at: op.id,
                        missing: *up,
                    });
                }
            }
        }
        // Kahn's algorithm.
        let mut indegree: HashMap<OperatorId, usize> = self
            .operators
            .iter()
            .map(|o| (o.id, o.upstreams.len()))
            .collect();
        let mut downstream: HashMap<OperatorId, Vec<OperatorId>> = HashMap::new();
        for op in &self.operators {
            for (up, _) in &op.upstreams {
                downstream.entry(*up).or_default().push(op.id);
            }
        }
        let mut ready: Vec<OperatorId> = self
            .operators
            .iter()
            .filter(|o| o.upstreams.is_empty())
            .map(|o| o.id)
            .collect();
        let mut order = Vec::with_capacity(self.operators.len());
        while let Some(id) = ready.pop() {
            order.push(id);
            for down in downstream.get(&id).into_iter().flatten() {
                let d = indegree.get_mut(down).expect("known operator");
                *d -= 1;
                if *d == 0 {
                    ready.push(*down);
                }
            }
        }
        if order.len() != self.operators.len() {
            return Err(AppError::Cyclic);
        }
        Ok(order)
    }

    /// All sensors the app consumes (deduplicated, sorted).
    #[must_use]
    pub fn sensors(&self) -> Vec<SensorId> {
        let set: BTreeSet<SensorId> = self
            .operators
            .iter()
            .flat_map(|o| o.inputs.iter().map(|i| i.sensor))
            .collect();
        set.into_iter().collect()
    }

    /// All actuators the app drives (deduplicated, sorted).
    #[must_use]
    pub fn actuators(&self) -> Vec<ActuatorId> {
        let set: BTreeSet<ActuatorId> = self
            .operators
            .iter()
            .flat_map(|o| o.actuators.iter().map(|(a, _)| *a))
            .collect();
        set.into_iter().collect()
    }

    /// The operator with the given id, if any.
    #[must_use]
    pub fn operator(&self, id: OperatorId) -> Option<&OperatorSpec> {
        self.operators.iter().find(|o| o.id == id)
    }
}

/// Fluent builder mirroring the Table 2 API.
#[derive(Debug)]
pub struct AppBuilder {
    spec: AppSpec,
    next_op: u32,
}

impl AppBuilder {
    /// Starts an app definition.
    #[must_use]
    pub fn new(id: AppId, name: impl Into<String>) -> Self {
        Self {
            spec: AppSpec {
                id,
                name: name.into(),
                operators: Vec::new(),
            },
            next_op: 0,
        }
    }

    /// `new Operator(name, combiner)`: starts an operator definition;
    /// finish it with [`OperatorBuilder::done`].
    #[must_use]
    pub fn operator(
        self,
        name: impl Into<String>,
        combiner: super::combiner::CombinerSpec,
        logic: impl OperatorLogic + 'static,
    ) -> OperatorBuilder {
        let id = OperatorId(self.next_op);
        OperatorBuilder {
            app: self,
            op: OperatorSpec {
                id,
                name: name.into(),
                inputs: Vec::new(),
                upstreams: Vec::new(),
                combiner,
                logic: Arc::new(logic),
                actuators: Vec::new(),
            },
        }
    }

    /// Validates and finishes the app.
    ///
    /// # Errors
    ///
    /// Returns an [`AppError`] if the graph is malformed.
    pub fn build(self) -> Result<AppSpec, AppError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// Builder for one operator (returned by [`AppBuilder::operator`]).
#[derive(Debug)]
pub struct OperatorBuilder {
    app: AppBuilder,
    op: OperatorSpec,
}

impl OperatorBuilder {
    /// The id the operator under construction will have.
    #[must_use]
    pub fn id(&self) -> OperatorId {
        self.op.id
    }

    /// `addSensor(sensor, GAP|GAPLESS, window, [pollingPolicy])`.
    #[must_use]
    pub fn sensor(mut self, sensor: SensorId, delivery: Delivery, window: WindowSpec) -> Self {
        self.op.inputs.push(InputSpec {
            sensor,
            delivery,
            window,
            poll: None,
            staleness_bound: None,
        });
        self
    }

    /// `addSensor` with a polling policy for poll-based sensors.
    #[must_use]
    pub fn polled_sensor(
        mut self,
        sensor: SensorId,
        delivery: Delivery,
        window: WindowSpec,
        poll: PollSpec,
    ) -> Self {
        self.op.inputs.push(InputSpec {
            sensor,
            delivery,
            window,
            poll: Some(poll),
            staleness_bound: None,
        });
        self
    }

    /// Sets the staleness bound of the most recently added sensor
    /// input (§6's "upper bound on the event staleness that the
    /// application can tolerate").
    ///
    /// # Panics
    ///
    /// Panics if no sensor input has been added yet.
    #[must_use]
    pub fn staleness_bound(mut self, bound: Duration) -> Self {
        self.op
            .inputs
            .last_mut()
            .expect("staleness_bound follows a sensor input")
            .staleness_bound = Some(bound);
        self
    }

    /// `addUpstreamOperator(operator, window)`.
    #[must_use]
    pub fn upstream(mut self, op: OperatorId, window: WindowSpec) -> Self {
        self.op.upstreams.push((op, window));
        self
    }

    /// `addActuator(actuator, GAP|GAPLESS)`.
    #[must_use]
    pub fn actuator(mut self, actuator: ActuatorId, delivery: Delivery) -> Self {
        self.op.actuators.push((actuator, delivery));
        self
    }

    /// Finishes this operator and returns to the app builder.
    #[must_use]
    pub fn done(mut self) -> AppBuilder {
        self.app.spec.operators.push(self.op);
        self.app.next_op += 1;
        self.app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::combiner::CombinerSpec;
    use crate::app::operator::{CombinedWindows, OpCtx};

    fn noop() -> impl OperatorLogic {
        |_: &mut OpCtx, _: &CombinedWindows| {}
    }

    fn sensor_input(op: OperatorBuilder) -> OperatorBuilder {
        op.sensor(SensorId(1), Delivery::Gap, WindowSpec::count(1))
    }

    #[test]
    fn listing1_style_app_builds() {
        // Intrusion detection: n door sensors, FTCombiner(n-1),
        // Gapless count-1 windows, a siren.
        let n = 3;
        let mut op = AppBuilder::new(AppId(1), "intrusion").operator(
            "Intrusion",
            CombinerSpec::tolerate_fail_stop(n),
            noop(),
        );
        for s in 0..n {
            op = op.sensor(SensorId(s as u32), Delivery::Gapless, WindowSpec::count(1));
        }
        let app = op
            .actuator(ActuatorId(1), Delivery::Gapless)
            .done()
            .build()
            .unwrap();
        assert_eq!(app.sensors().len(), 3);
        assert_eq!(app.actuators(), vec![ActuatorId(1)]);
        assert_eq!(app.validate().unwrap(), vec![OperatorId(0)]);
        assert!(app.operator(OperatorId(0)).is_some());
        assert!(app.operator(OperatorId(9)).is_none());
    }

    #[test]
    fn chained_operators_topo_order() {
        let app = AppBuilder::new(AppId(2), "avg-then-hvac");
        let app = sensor_input(app.operator("avg", CombinerSpec::Any, noop())).done();
        let avg_id = OperatorId(0);
        let app = app
            .operator("hvac", CombinerSpec::Any, noop())
            .upstream(avg_id, WindowSpec::count(1))
            .actuator(ActuatorId(1), Delivery::Gap)
            .done()
            .build()
            .unwrap();
        let order = app.validate().unwrap();
        let pos = |id: OperatorId| order.iter().position(|o| *o == id).unwrap();
        assert!(pos(avg_id) < pos(OperatorId(1)), "upstream first");
    }

    #[test]
    fn empty_app_rejected() {
        let err = AppBuilder::new(AppId(0), "empty").build().unwrap_err();
        assert_eq!(err, AppError::Empty);
        assert_eq!(err.to_string(), "app has no operators");
    }

    #[test]
    fn inputless_operator_rejected() {
        let err = AppBuilder::new(AppId(0), "noinput")
            .operator("lonely", CombinerSpec::Any, noop())
            .done()
            .build()
            .unwrap_err();
        assert_eq!(err, AppError::NoInputs(OperatorId(0)));
    }

    #[test]
    fn unknown_upstream_rejected() {
        let err = AppBuilder::new(AppId(0), "dangling")
            .operator("op", CombinerSpec::Any, noop())
            .upstream(OperatorId(42), WindowSpec::count(1))
            .done()
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            AppError::UnknownUpstream {
                at: OperatorId(0),
                missing: OperatorId(42)
            }
        );
    }

    #[test]
    fn cycle_rejected() {
        // Hand-build a two-operator cycle (the builder cannot express
        // it forward, so construct the spec directly).
        let logic: LogicHandle = Arc::new(noop());
        let mk = |id: u32, up: u32| OperatorSpec {
            id: OperatorId(id),
            name: format!("op{id}"),
            inputs: vec![],
            upstreams: vec![(OperatorId(up), WindowSpec::count(1))],
            combiner: CombinerSpec::Any,
            logic: Arc::clone(&logic),
            actuators: vec![],
        };
        let app = AppSpec {
            id: AppId(0),
            name: "cycle".into(),
            operators: vec![mk(0, 1), mk(1, 0)],
        };
        assert_eq!(app.validate().unwrap_err(), AppError::Cyclic);
    }

    #[test]
    fn duplicate_operator_rejected() {
        let logic: LogicHandle = Arc::new(noop());
        let mk = || OperatorSpec {
            id: OperatorId(0),
            name: "dup".into(),
            inputs: vec![InputSpec {
                sensor: SensorId(0),
                delivery: Delivery::Gap,
                window: WindowSpec::count(1),
                poll: None,
                staleness_bound: None,
            }],
            upstreams: vec![],
            combiner: CombinerSpec::Any,
            logic: Arc::clone(&logic),
            actuators: vec![],
        };
        let app = AppSpec {
            id: AppId(0),
            name: "dup".into(),
            operators: vec![mk(), mk()],
        };
        assert_eq!(
            app.validate().unwrap_err(),
            AppError::DuplicateOperator(OperatorId(0))
        );
    }

    #[test]
    fn poll_spec_strategy_derivation() {
        let spec = PollSpec::every(Duration::from_secs(10));
        assert_eq!(
            spec.effective_strategy(Delivery::Gapless),
            PollStrategy::Coordinated
        );
        assert_eq!(
            spec.effective_strategy(Delivery::Gap),
            PollStrategy::GapSingle
        );
        let forced = spec.with_strategy(PollStrategy::Uncoordinated);
        assert_eq!(
            forced.effective_strategy(Delivery::Gapless),
            PollStrategy::Uncoordinated
        );
    }
}
