//! The Rivulet process: one runtime instance per host (§3.3).
//!
//! A [`RivuletProcess`] is an actor gluing every platform service
//! together: adapters decode device frames, the membership service
//! maintains the local view, the delivery service runs the Gap chain
//! and Gapless ring (with reliable-broadcast fallback and anti-entropy),
//! the polling coordinator schedules poll-based sensors, and the
//! execution service elects active logic nodes and runs app runtimes.
//!
//! By default all state is volatile: a crash loses it, and a recovered
//! process is rebuilt from its (re-invoked) factory, re-joining via
//! keep-alives and receiving missed events through anti-entropy — the
//! crash-recovery model of §3.1. With a [`DurabilitySpec`] attached,
//! the process additionally appends every replicated event and
//! periodic operator checkpoints to a write-ahead log
//! ([`rivulet_storage::Wal`]) and withholds ring acknowledgements,
//! broadcast relays, and local delivery until the append is durable;
//! recovery then restores the event store and processed watermarks
//! from the log instead of relying solely on peers.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use rivulet_devices::frame::RadioFrame;
use rivulet_net::actor::{Actor, ActorEvent, ActorId, Context};
use rivulet_net::metrics::FanoutStats;
use rivulet_net::ring::SpscRing;
use rivulet_obs::Recorder;
use rivulet_types::wire::{Wire, WriterPool};
use rivulet_types::{
    ArenaStats, Command, CommandId, Duration, Event, OperatorId, ProcessId, RoutineId, SensorId,
    Time,
};

use crate::app::{AppRuntime, AppSpec, OpOutput, StreamKey};
use crate::config::{AckMode, RivuletConfig};
use crate::delivery::gap::{self, GapRole};
use crate::delivery::gapless::GaplessState;
use crate::delivery::polling::{PollState, PollStrategy};
use crate::delivery::rbcast::RbcastState;
use crate::delivery::{Action, Delivery};
use crate::deploy::{Directory, DirectoryData};
use crate::execution::{placement, ExecutionState, Transition};
use crate::gating::{AdaptiveGate, GatedQueue};
use crate::membership::Membership;
use crate::messages::{Frame, ProcMsg};
use crate::probe::{AppProbe, DeliveryRecord, StoreProbe};
use crate::repair::{HealthModel, RepairCounts, RepairVerdict};
use crate::routine::{
    AbortPlan, AckOutcome, RecoveryAction, RoutineEngine, RoutineProbe, RoutineSpec,
};
use rivulet_storage::{Checkpoint, FlushPolicy, LedgerEntry, StorageBackend, Wal, WalOptions};

const TOKEN_INIT_RETRY: u64 = 0;
const TOKEN_TICK: u64 = 1;
const TOKEN_FLUSH: u64 = 2;
const TOKEN_CHECKPOINT: u64 = 3;
const KIND_EPOCH: u64 = 2;
const KIND_SLOT: u64 = 3;
const KIND_REPOLL: u64 = 4;
const KIND_WINDOW: u64 = 5;
const KIND_ROUTINE: u64 = 6;

/// Synthetic operator identity under which routine compensation
/// commands are sequenced: compensations restore declared safe states
/// after an abort and belong to no application operator.
const OP_COMPENSATION: OperatorId = OperatorId(u32::MAX);

/// Processed events younger than this are retained so straggling
/// duplicate copies still deduplicate against the store.
const GC_STRAGGLER_HORIZON: Duration = Duration::from_secs(30);

fn token(kind: u64, idx: u32) -> u64 {
    (kind << 32) | u64::from(idx)
}

/// Durable-storage attachment for one process: the backend outlives
/// crashes (it is cloned into the factory as an `Arc`), so a recovered
/// incarnation reopens the same log.
#[derive(Clone)]
pub struct DurabilitySpec {
    /// Where segments live (a real directory or a simulated disk).
    pub backend: Arc<dyn StorageBackend>,
    /// WAL tuning: flush policy and segment size.
    pub options: WalOptions,
    /// How often the process checkpoints processed watermarks and
    /// compacts fully-acked segments.
    pub checkpoint_interval: Duration,
}

impl std::fmt::Debug for DurabilitySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilitySpec")
            .field("options", &self.options)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .finish_non_exhaustive()
    }
}

/// Static description used to construct a process actor (shared by the
/// factory so crash–recovery rebuilds an identical fresh process).
#[derive(Clone)]
pub struct ProcessSpec {
    /// The process identity.
    pub pid: ProcessId,
    /// Platform configuration.
    pub config: RivuletConfig,
    /// Applications deployed home-wide (every process knows all apps;
    /// active/shadow roles are decided by the execution service).
    pub apps: Vec<(Arc<AppSpec>, Arc<AppProbe>)>,
    /// The shared deployment directory, filled before the drivers run.
    pub directory: Arc<Directory>,
    /// Optional durable storage; `None` keeps the paper's all-volatile
    /// model.
    pub storage: Option<DurabilitySpec>,
    /// Optional store-residency probe sampled on every tick.
    pub store_probe: Option<Arc<StoreProbe>>,
    /// Shared counters for encode-once / coalescing savings, reported
    /// through the driver's net metrics.
    pub fanout: Arc<FanoutStats>,
    /// Unified observability handle (cloned from the driver); disabled
    /// recorders make every record call a no-op.
    pub obs: Recorder,
    /// Routines deployed home-wide (every process knows all routines;
    /// the coordinator is the active logic node whose operator triggers
    /// the firing). Ignored unless [`RivuletConfig::routines`] is on.
    pub routines: Vec<(Arc<RoutineSpec>, Arc<RoutineProbe>)>,
}

impl std::fmt::Debug for ProcessSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessSpec")
            .field("pid", &self.pid)
            .field("apps", &self.apps.len())
            .finish_non_exhaustive()
    }
}

struct SensorRt {
    device: ActorId,
    reachers: Vec<ProcessId>,
    delivery: Delivery,
    poll: Option<PollRt>,
    subscribed_apps: Vec<usize>,
}

struct PollRt {
    state: PollState,
    participates: bool,
}

struct AppRt {
    spec: Arc<AppSpec>,
    probe: Arc<AppProbe>,
    exec: ExecutionState,
    runtime: Option<AppRuntime>,
    /// Stale-drop count already copied into the probe.
    stale_reported: u64,
    /// Actor ids of suspected-dead chain predecessors whose `failover`
    /// spans this freshly-promoted node must close at its first
    /// application activity (delivery or actuation).
    pending_failover: Vec<u64>,
}

struct Initialized {
    membership: Membership,
    gapless: GaplessState,
    rbcast: RbcastState,
    apps: Vec<AppRt>,
    sensors: HashMap<SensorId, SensorRt>,
    actuators: HashMap<rivulet_types::ActuatorId, (ActorId, Vec<ProcessId>)>,
    peer_actors: BTreeMap<ProcessId, ActorId>,
    /// Processed watermarks learned from peers' keep-alives, merged
    /// with our own processing.
    processed: HashMap<SensorId, u64>,
    /// Durable-receipt watermarks: highest replicated-store seq per
    /// sensor, advanced only after the durability gate. Advertised on
    /// keep-alives as the cumulative broadcast acknowledgement.
    received_marks: HashMap<SensorId, u64>,
    window_timers: Vec<(usize, OperatorId, StreamKey, Duration)>,
    cmd_seq: HashMap<OperatorId, u64>,
    last_successor: Option<ProcessId>,
    /// The write-ahead log, when durable storage is attached.
    wal: Option<Wal>,
    /// Adaptive group-commit bound on the gated queue.
    gate: AdaptiveGate,
    /// Delivery-service actions withheld until the WAL events they
    /// depend on are flushed (group commit), sharded by sensor.
    gated: GatedQueue,
    /// Delivery→execution handoff: `Deliver` events queue here during
    /// action application and drain in batches afterwards, so the
    /// execution stage amortizes its entry cost over a burst instead of
    /// paying it per action.
    exec_ring: Option<SpscRing<Event>>,
    /// Reusable batch buffer for ring drains.
    ring_scratch: Vec<Event>,
    /// Deepest ring occupancy seen since the last tick gauge.
    ring_max_depth: usize,
    /// Ring traffic accumulated since the last tick export. Plain
    /// fields, not recorder calls: the ring moves every delivered
    /// event, and a string-keyed recorder update per event would cost
    /// more than the handoff it measures. Ticks export the deltas.
    ring_counts: RingCounts,
    /// Ring counters already exported to the recorder (delta basis).
    ring_reported: RingCounts,
    /// Arena counters already exported to the recorder (delta basis).
    arena_reported: ArenaStats,
    /// Per-activation send queue, flushed (and coalesced) at the end of
    /// every actor activation.
    outbox: Outbox,
    /// Device-fault health model; `None` unless
    /// [`RivuletConfig::repair`] is on, in which case delivered
    /// readings are health-checked (stuck/outlier detection,
    /// peer-midpoint substitution, quarantine) and stalled pollable
    /// sensors are re-polled from the tick.
    repair: Option<HealthModel>,
    /// Routine execution engine; `None` unless
    /// [`RivuletConfig::routines`] is on, in which case
    /// [`OpOutput::RunRoutine`] triggers staged all-or-nothing
    /// multi-actuator firings recorded in the hash-chained ledger.
    routines: Option<RoutineEngine>,
}

/// Hot-path ring counters, exported to the recorder as deltas on
/// process ticks (`ring.pushes` / `ring.pops` / `ring.batches` /
/// `ring.fallbacks`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct RingCounts {
    pushes: u64,
    pops: u64,
    batches: u64,
    fallbacks: u64,
}

/// Folds a repair-counter delta into the recorder. A clean delta (the
/// overwhelmingly common case) writes nothing, so healthy homes pay
/// one comparison per delivery and the obs snapshot carries no
/// `repair.*` keys at all when the layer never acted.
fn record_repair_counts(obs: &Recorder, counts: RepairCounts) {
    if counts == RepairCounts::default() {
        return;
    }
    if counts.substitutions > 0 {
        obs.add("repair.substitutions", counts.substitutions);
    }
    if counts.outlier_drops > 0 {
        obs.add("repair.outlier_drops", counts.outlier_drops);
    }
    if counts.quarantines > 0 {
        obs.add("repair.quarantines", counts.quarantines);
    }
    if counts.quarantined_drops > 0 {
        obs.add("repair.quarantined_drops", counts.quarantined_drops);
    }
    if counts.stuck_flagged > 0 {
        obs.add("repair.stuck_flagged", counts.stuck_flagged);
    }
}

/// Whether two part lists are clones of the same encodings: pointer
/// identity of live buffers implies identical bytes (both lists are
/// held alive by the caller, so an address can't be recycled).
fn same_parts(a: &[Bytes], b: &[Bytes]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.as_ptr() == y.as_ptr() && x.len() == y.len())
}

/// The per-activation send queue behind encode-once fan-out and frame
/// coalescing. Protocol messages are encoded exactly once into pooled
/// buffers; every queued entry is a cheap [`Bytes`] clone. At the end
/// of the activation, entries for the same destination are folded into
/// one multi-command [`Frame`] (when coalescing is enabled), so a
/// cascade of ring forwards, acks, and sync traffic to one peer costs
/// one network message. Grouping order derives purely from queue order
/// within the virtual-time activation, keeping batching deterministic.
struct Outbox {
    /// `(destination, pre-encoded message)` in queue order.
    queue: Vec<(ProcessId, Bytes)>,
    /// Scratch for per-destination grouping, reused across activations
    /// so steady-state flushing allocates nothing.
    groups: Vec<(ProcessId, Vec<Bytes>)>,
    /// Emptied part lists returned from previous flushes, recycled as
    /// the next activation's group storage.
    spare_parts: Vec<Vec<Bytes>>,
    pool: WriterPool,
    stats: Arc<FanoutStats>,
}

/// The Rivulet process actor.
pub struct RivuletProcess {
    spec: ProcessSpec,
    st: Option<Initialized>,
}

impl std::fmt::Debug for RivuletProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RivuletProcess")
            .field("pid", &self.spec.pid)
            .field("initialized", &self.st.is_some())
            .finish()
    }
}

impl RivuletProcess {
    /// Creates an uninitialized process; full initialization happens on
    /// [`ActorEvent::Start`], when the deployment directory is
    /// guaranteed to be filled.
    #[must_use]
    pub fn new(spec: ProcessSpec) -> Self {
        Self { spec, st: None }
    }

    fn me(&self) -> ProcessId {
        self.spec.pid
    }

    fn initialize(&mut self, ctx: &mut Context<'_>) {
        // Under the live driver, Start can race directory publication;
        // retry shortly (the simulator publishes before running, so the
        // retry path never triggers there).
        let dir: DirectoryData = match self.spec.directory.try_get() {
            Some(d) => d.clone(),
            None => {
                ctx.set_timer(Duration::from_millis(10), TOKEN_INIT_RETRY);
                return;
            }
        };
        let dir = &dir;
        let me = self.me();
        let peers: Vec<ProcessId> = dir.processes.iter().map(|(p, _)| *p).collect();
        let peer_actors: BTreeMap<ProcessId, ActorId> = dir.processes.iter().copied().collect();
        let membership = Membership::new(me, &peers, self.spec.config.failure_timeout, ctx.now());

        // Placement chains are computed from the directory's static
        // reachability — identically at every process (§7).
        let reach: Vec<placement::Reachability> = peers
            .iter()
            .map(|p| {
                placement::Reachability::new(
                    *p,
                    dir.sensors
                        .iter()
                        .filter(|s| s.reachers.contains(p))
                        .map(|s| s.id)
                        .collect(),
                    dir.actuators
                        .iter()
                        .filter(|a| a.reachers.contains(p))
                        .map(|a| a.id)
                        .collect(),
                )
            })
            .collect();

        let mut apps = Vec::new();
        let mut window_timers = Vec::new();
        for (idx, (spec, probe)) in self.spec.apps.iter().enumerate() {
            let chain = placement::chain_for(&reach, &spec.sensors(), &spec.actuators());
            let exec = ExecutionState::new(me, chain);
            // Window timer inventory comes from a throwaway runtime.
            let rt = AppRuntime::new(Arc::clone(spec)).expect("validated app");
            for (op, stream, period) in rt.timer_streams() {
                window_timers.push((idx, op, stream, period));
            }
            apps.push(AppRt {
                spec: Arc::clone(spec),
                probe: Arc::clone(probe),
                exec,
                runtime: None,
                stale_reported: 0,
                pending_failover: Vec::new(),
            });
        }

        // Sensor runtime info: delivery guarantee and polling plan are
        // taken from the first app input wiring each sensor.
        let mut sensors: HashMap<SensorId, SensorRt> = HashMap::new();
        for entry in &dir.sensors {
            let mut delivery = Delivery::Gapless;
            let mut poll = None;
            let mut subscribed_apps = Vec::new();
            for (idx, (app, _)) in self.spec.apps.iter().enumerate() {
                for op in &app.operators {
                    for input in &op.inputs {
                        if input.sensor != entry.id {
                            continue;
                        }
                        if !subscribed_apps.contains(&idx) {
                            subscribed_apps.push(idx);
                        }
                        delivery = input.delivery;
                        if let (Some(spec_poll), true, Some(latency)) = (
                            input.poll.as_ref(),
                            entry.reachers.contains(&me),
                            entry.poll_latency,
                        ) {
                            let strategy = spec_poll.effective_strategy(input.delivery);
                            let slot = entry
                                .reachers
                                .iter()
                                .position(|p| *p == me)
                                .expect("me is a reacher");
                            poll = Some(PollRt {
                                state: PollState::new(
                                    crate::delivery::polling::PollPlan {
                                        sensor: entry.id,
                                        epoch: spec_poll.epoch,
                                        poll_latency: latency,
                                        strategy,
                                    },
                                    slot,
                                    entry.reachers.len(),
                                ),
                                participates: false,
                            });
                        }
                    }
                }
            }
            sensors.insert(
                entry.id,
                SensorRt {
                    device: entry.actor,
                    reachers: entry.reachers.clone(),
                    delivery,
                    poll,
                    subscribed_apps,
                },
            );
        }

        let actuators = dir
            .actuators
            .iter()
            .map(|a| (a.id, (a.actor, a.reachers.clone())))
            .collect();

        // Open the WAL (if storage is attached) and recover the
        // durable prefix: events re-enter the replicated store
        // silently (no delivery, no ring traffic — peers already saw
        // them) and the newest checkpoint seeds the processed
        // watermarks, so a later promotion replays only the suffix
        // beyond the checkpoint.
        let mut gapless = GaplessState::new_sharded(
            me,
            self.spec.config.store_cap_per_sensor,
            self.spec.config.store_shards,
            self.spec.config.anti_entropy,
        );
        if self.spec.config.payload_arena {
            // Re-home stored blob payloads that pin larger arrival
            // frames into recycled arena chunks (recovered events
            // included — they arrive as views into WAL segment reads).
            gapless.store_mut().enable_arena();
        }
        let mut processed: HashMap<SensorId, u64> = HashMap::new();
        let mut recovered_ledger: Vec<LedgerEntry> = Vec::new();
        let wal = self.spec.storage.as_ref().map(|durability| {
            let (mut wal, recovered) =
                Wal::open(Arc::clone(&durability.backend), durability.options).expect("wal open");
            wal.attach_recorder(self.spec.obs.clone());
            self.spec.obs.inc("wal.recoveries");
            self.spec
                .obs
                .add("wal.recovered_events", recovered.events.len() as u64);
            self.spec
                .obs
                .add("wal.recovery_dropped_bytes", recovered.dropped_bytes as u64);
            if let Some(checkpoint) = recovered.checkpoint {
                for (sensor, seq) in checkpoint.processed {
                    let mark = processed.entry(sensor).or_insert(0);
                    *mark = (*mark).max(seq);
                }
            }
            for event in recovered.events {
                gapless.store_mut().insert(event);
            }
            recovered_ledger = recovered.ledger;
            wal
        });

        // Rebuild the routine engine and classify every ledger instance
        // the crash left unresolved: committed firings re-drive their
        // idempotent commit, interrupted stagings abort (and compensate
        // once `st` is in place — see `replay_routine_recovery`).
        let mut routines =
            self.spec.config.routines.then(|| {
                RoutineEngine::new(self.spec.config.routine_ledger_seed, &self.spec.routines)
            });
        let mut routine_recovery: Vec<RecoveryAction> = Vec::new();
        if let Some(engine) = routines.as_mut() {
            if !recovered_ledger.is_empty() {
                self.spec
                    .obs
                    .add("ledger.recovered_entries", recovered_ledger.len() as u64);
                routine_recovery = engine.recover(&recovered_ledger, ctx.now());
            }
        }
        // Recovered events are already durable: re-advertise their
        // receipt watermarks so peers' pending broadcasts retire.
        let received_marks: HashMap<SensorId, u64> = gapless.store().iter_watermarks().collect();

        // Command sequence counters must resume past every id the
        // ledger proves was already issued: actuators dedup by
        // `CommandId`, so a reused (operator, seq) pair after a crash
        // would be silently suppressed as a pre-crash duplicate.
        let mut cmd_seq: HashMap<OperatorId, u64> = HashMap::new();
        for entry in &recovered_ledger {
            for (_, cmd) in &entry.commands {
                if cmd.issuer == me {
                    let floor = cmd_seq.entry(cmd.operator).or_insert(0);
                    *floor = (*floor).max(cmd.seq + 1);
                }
            }
        }

        self.st = Some(Initialized {
            membership,
            gapless,
            // Floods retransmit at the keep-alive-scale interval;
            // tracked ring-origin entries get the failure timeout as
            // grace, so healthy runs always retire them via beacon
            // watermarks before any fallback flood fires.
            rbcast: RbcastState::new(me).with_timing(
                self.spec.config.rbcast_retransmit,
                self.spec.config.failure_timeout,
            ),
            apps,
            sensors,
            actuators,
            peer_actors,
            processed,
            received_marks,
            window_timers,
            cmd_seq,
            last_successor: None,
            wal,
            gate: AdaptiveGate::new(
                self.spec.config.wal_max_gated,
                self.spec.config.wal_adaptive_gating,
            ),
            gated: GatedQueue::new(self.spec.config.store_shards),
            exec_ring: self
                .spec
                .config
                .exec_ring
                .then(|| SpscRing::with_capacity(self.spec.config.exec_ring_capacity)),
            ring_scratch: Vec::new(),
            ring_max_depth: 0,
            ring_counts: RingCounts::default(),
            ring_reported: RingCounts::default(),
            arena_reported: ArenaStats::default(),
            outbox: Outbox {
                queue: Vec::new(),
                groups: Vec::new(),
                spare_parts: Vec::new(),
                pool: WriterPool::new(),
                stats: Arc::clone(&self.spec.fanout),
            },
            repair: self.spec.config.repair.then(|| {
                let specs: Vec<Arc<AppSpec>> =
                    self.spec.apps.iter().map(|(s, _)| Arc::clone(s)).collect();
                HealthModel::from_apps(&self.spec.config, &specs)
            }),
            routines,
        });

        // Drive the recovery verdicts now that `st` exists: re-send
        // idempotent commits, abort-and-compensate interrupted stagings
        // (their fresh `Aborted` entries go through the WAL first).
        self.replay_routine_recovery(ctx, routine_recovery);

        self.spec
            .obs
            .observe("store.shard.count", self.spec.config.store_shards as u64);

        // Arm the durability timers: the group-commit flush interval
        // (when the policy is time-based) and the checkpoint cadence.
        if let Some(durability) = &self.spec.storage {
            if let FlushPolicy::EveryInterval(period) = durability.options.flush_policy {
                ctx.set_timer(period, TOKEN_FLUSH);
            }
            ctx.set_timer(durability.checkpoint_interval, TOKEN_CHECKPOINT);
        }

        // Kick off the periodic tick (keep-alives, failure detection,
        // election, broadcast retransmission) and polling epochs.
        self.tick(ctx);
        let sensor_ids: Vec<SensorId> = {
            let st = self.st.as_ref().expect("initialized");
            st.sensors
                .iter()
                .filter(|(_, s)| s.poll.is_some())
                .map(|(id, _)| *id)
                .collect()
        };
        for sensor in sensor_ids {
            self.epoch_boundary(ctx, sensor);
        }
    }

    /// The periodic tick: keep-alives, view maintenance, election,
    /// broadcast retransmission.
    fn tick(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let me = self.me();
        let mut actions: Vec<Action> = Vec::new();
        {
            let st = self.st.as_mut().expect("initialized");
            // Keep-alives go to every configured peer, not just the
            // view: a healed partition must be able to un-suspect. One
            // fan-out action: the beacon is encoded once and
            // cheap-cloned to every destination.
            let processed: Vec<(SensorId, u64)> = {
                let mut v: Vec<(SensorId, u64)> =
                    st.processed.iter().map(|(s, q)| (*s, *q)).collect();
                v.sort_unstable_by_key(|(s, _)| *s);
                v
            };
            let received: Vec<(SensorId, u64)> = {
                let mut v: Vec<(SensorId, u64)> =
                    st.received_marks.iter().map(|(s, q)| (*s, *q)).collect();
                v.sort_unstable_by_key(|(s, _)| *s);
                v
            };
            let beacon_peers: Vec<ProcessId> = st
                .membership
                .peers()
                .iter()
                .copied()
                .filter(|p| *p != me)
                .collect();
            if !beacon_peers.is_empty() {
                actions.push(Action::Fanout {
                    to: beacon_peers,
                    msg: ProcMsg::KeepAlive {
                        from: me,
                        processed,
                        received,
                    },
                });
            }
            // Ring successor maintenance + anti-entropy.
            let successor = st.membership.ring_successor(now);
            if successor != st.last_successor {
                st.last_successor = successor;
                if let Some(action) = st.gapless.on_successor_change(successor) {
                    actions.push(action);
                }
            }
            // Reliable-broadcast retransmission (age-guarded: entries
            // whose cumulative-ack window is still open are skipped).
            let view = st.membership.view(now);
            actions.extend(st.rbcast.on_tick(&view, now));
            // Watermark garbage collection: events processed home-wide
            // and older than the straggler horizon will never be
            // replayed or synced again. Relay markers below the same
            // watermark can never be re-flooded, so they go with them.
            if self.spec.config.store_gc {
                let horizon = now.duration_since(Time::ZERO);
                let cutoff = if horizon > GC_STRAGGLER_HORIZON {
                    Time::ZERO + (horizon - GC_STRAGGLER_HORIZON)
                } else {
                    Time::ZERO
                };
                let marks: Vec<(SensorId, u64)> =
                    st.processed.iter().map(|(s, q)| (*s, *q)).collect();
                for (sensor, upto) in marks {
                    let _ = st.gapless.store_mut().prune_processed(sensor, upto, cutoff);
                    st.rbcast.prune_relayed(sensor, upto);
                }
            }
            if let Some(probe) = &self.spec.store_probe {
                probe.record_len(now, me, st.gapless.store().len());
            }
            self.spec
                .obs
                .observe("store.len", st.gapless.store().len() as u64);
            self.spec.obs.observe(
                "store.shard.max_len",
                st.gapless.store().max_shard_len() as u64,
            );
            self.spec
                .obs
                .observe("rbcast.pending", st.rbcast.pending_count() as u64);
            if st.exec_ring.is_some() {
                self.spec
                    .obs
                    .observe("ring.max_depth", st.ring_max_depth as u64);
                st.ring_max_depth = 0;
                let ring = st.ring_counts;
                if ring != st.ring_reported {
                    let prev = st.ring_reported;
                    self.spec.obs.add("ring.pushes", ring.pushes - prev.pushes);
                    self.spec.obs.add("ring.pops", ring.pops - prev.pops);
                    self.spec
                        .obs
                        .add("ring.batches", ring.batches - prev.batches);
                    self.spec
                        .obs
                        .add("ring.fallbacks", ring.fallbacks - prev.fallbacks);
                    st.ring_reported = ring;
                }
            }
            if st.wal.is_some() {
                self.spec
                    .obs
                    .set_gauge("wal.gated_bound", st.gate.bound() as i64);
                self.spec
                    .obs
                    .observe("wal.gated_max_shard", st.gated.max_shard_depth() as u64);
            }
            let arena = st.gapless.store().arena_stats();
            if arena != st.arena_reported {
                let prev = st.arena_reported;
                self.spec
                    .obs
                    .add("arena.allocs", arena.allocs - prev.allocs);
                self.spec.obs.add("arena.bytes", arena.bytes - prev.bytes);
                self.spec
                    .obs
                    .add("arena.chunks", arena.chunks - prev.chunks);
                self.spec
                    .obs
                    .add("arena.recycled", arena.recycled - prev.recycled);
                self.spec
                    .obs
                    .add("arena.oversize", arena.oversize - prev.oversize);
                st.arena_reported = arena;
            }
        }
        self.apply_actions(ctx, actions);
        // Group-commit backstop: a partial EveryN batch (or an idle
        // interval policy) must not withhold its actions longer than
        // one keep-alive period.
        self.flush_wal(ctx);
        self.election(ctx);
        self.repair_tick(ctx);
        ctx.set_timer(self.spec.config.keepalive_interval, TOKEN_TICK);
    }

    /// Repair-layer stall check, ridden on the periodic tick: pollable
    /// sensors this process coordinates that have been silent past the
    /// stall timeout get an immediate out-of-band re-poll (rate-limited
    /// to one per timeout by the health model). No-op unless
    /// [`RivuletConfig::repair`] is on.
    fn repair_tick(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let stalled: Vec<SensorId> = {
            let st = self.st.as_mut().expect("initialized");
            let Some(health) = st.repair.as_mut() else {
                return;
            };
            let mut pollable: Vec<SensorId> = st
                .sensors
                .iter()
                .filter(|(_, rt)| rt.poll.as_ref().is_some_and(|p| p.participates))
                .map(|(id, _)| *id)
                .collect();
            pollable.sort_unstable();
            pollable
                .into_iter()
                .filter(|s| health.check_stall(*s, now))
                .collect()
        };
        for sensor in stalled {
            self.spec.obs.inc("repair.repolls");
            self.send_poll(ctx, sensor);
        }
    }

    /// Re-evaluates the election for every app, handling promotion
    /// replay and demotion teardown.
    fn election(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let me = self.me();
        let n_apps = self.st.as_ref().expect("initialized").apps.len();
        for idx in 0..n_apps {
            let transition = {
                let st = self.st.as_mut().expect("initialized");
                let membership = &st.membership;
                st.apps[idx]
                    .exec
                    .reevaluate(|p| membership.is_alive(p, now))
            };
            match transition {
                Some(Transition::Promoted) => {
                    let (spec, probe) = {
                        let st = self.st.as_ref().expect("initialized");
                        let app = &st.apps[idx];
                        (Arc::clone(&app.spec), Arc::clone(&app.probe))
                    };
                    probe.record_transition(now, me, true);
                    self.spec
                        .obs
                        .event("exec.promoted", now, u64::from(me.0), idx as u64);
                    // Failover spans opened at crash detection are
                    // closed at this node's first post-promotion app
                    // activity; remember which dead predecessors'
                    // spans we are taking over.
                    let suspected: Vec<u64> = {
                        let st = self.st.as_ref().expect("initialized");
                        let app = &st.apps[idx];
                        let chain = app.exec.chain();
                        let my_pos = chain.iter().position(|p| *p == me).unwrap_or(chain.len());
                        chain[..my_pos]
                            .iter()
                            .filter(|p| !st.membership.is_alive(**p, now))
                            .filter_map(|p| st.peer_actors.get(p))
                            .map(|a| u64::from(a.0))
                            .collect()
                    };
                    let runtime = AppRuntime::new(spec).expect("validated app");
                    {
                        let app = &mut self.st.as_mut().expect("initialized").apps[idx];
                        app.runtime = Some(runtime);
                        app.stale_reported = 0;
                        app.pending_failover = suspected;
                    }
                    // Arm this app's window timers.
                    let timers: Vec<(usize, Duration)> = {
                        let st = self.st.as_ref().expect("initialized");
                        st.window_timers
                            .iter()
                            .enumerate()
                            .filter(|(_, (a, ..))| *a == idx)
                            .map(|(i, (.., d))| (i, *d))
                            .collect()
                    };
                    for (i, period) in timers {
                        ctx.set_timer(period, token(KIND_WINDOW, i as u32));
                    }
                    self.replay_outstanding(ctx, idx);
                }
                Some(Transition::Demoted) => {
                    self.spec
                        .obs
                        .event("exec.demoted", now, u64::from(me.0), idx as u64);
                    let st = self.st.as_mut().expect("initialized");
                    st.apps[idx].runtime = None;
                    st.apps[idx].pending_failover.clear();
                    st.apps[idx].probe.record_transition(now, me, false);
                    let to_cancel: Vec<usize> = st
                        .window_timers
                        .iter()
                        .enumerate()
                        .filter(|(_, (a, ..))| *a == idx)
                        .map(|(i, _)| i)
                        .collect();
                    for i in to_cancel {
                        ctx.cancel_timer(token(KIND_WINDOW, i as u32));
                    }
                }
                None => {}
            }
        }
    }

    /// On promotion: feed replicated-but-unprocessed events (above the
    /// merged processed watermarks) into the fresh runtime, in
    /// per-sensor sequence order — this produces the Fig. 7 catch-up
    /// spike under Gapless delivery.
    fn replay_outstanding(&mut self, ctx: &mut Context<'_>, app_idx: usize) {
        let events: Vec<Event> = {
            let st = self.st.as_ref().expect("initialized");
            let spec = &st.apps[app_idx].spec;
            let mut out = Vec::new();
            for sensor in spec.sensors() {
                // Only Gapless inputs are replicated in the store.
                let after = st.processed.get(&sensor).copied();
                out.extend(st.gapless.store().events_after(sensor, after));
            }
            out
        };
        for event in events {
            self.process_at_app(ctx, app_idx, &event);
        }
    }

    /// Routes one newly known event to a specific active app runtime.
    fn process_at_app(&mut self, ctx: &mut Context<'_>, app_idx: usize, event: &Event) {
        let now = ctx.now();
        let me = self.me();
        // Repair layer: health-check the reading before any app sees
        // it. The verdict is cached per event id, so routing the same
        // event to several apps (or replaying it after a promotion)
        // consults the detectors exactly once.
        let mut substituted: Option<Event> = None;
        {
            let st = self.st.as_mut().expect("initialized");
            if let Some(health) = st.repair.as_mut() {
                let verdict = health.observe(now, event);
                let counts = health.take_counts();
                record_repair_counts(&self.spec.obs, counts);
                match verdict {
                    RepairVerdict::Accept => {}
                    RepairVerdict::Substitute(value) => {
                        substituted = Some(HealthModel::substituted(event, value));
                    }
                    RepairVerdict::DropOutlier | RepairVerdict::DropQuarantined => {
                        // The platform consumed the event even though
                        // no app will: advance the watermark so the
                        // drop is not replayed forever.
                        let mark = st.processed.entry(event.id.sensor).or_insert(0);
                        *mark = (*mark).max(event.id.seq);
                        return;
                    }
                }
            }
        }
        let event = substituted.as_ref().unwrap_or(event);
        let outputs = {
            let st = self.st.as_mut().expect("initialized");
            let app = &mut st.apps[app_idx];
            let Some(runtime) = app.runtime.as_mut() else {
                return;
            };
            if !runtime.subscribes_to(event.id.sensor) {
                return;
            }
            app.probe.record_delivery(DeliveryRecord {
                at: now,
                by: me,
                event: event.id,
                emitted_at: event.emitted_at,
                value: event.payload.as_scalar(),
            });
            self.spec.obs.inc("app.deliveries");
            self.spec.obs.event(
                "app.delivery",
                now,
                u64::from(event.id.sensor.as_u32()),
                event.id.seq,
            );
            self.spec.obs.observe(
                "app.delay_us",
                now.duration_since(event.emitted_at).as_micros(),
            );
            let outputs = runtime.on_event(now, event);
            let stale = runtime.stale_drops();
            if stale > app.stale_reported {
                app.probe.record_stale_drops(stale - app.stale_reported);
                self.spec
                    .obs
                    .add("app.stale_drops", stale - app.stale_reported);
                app.stale_reported = stale;
            }
            let mark = st.processed.entry(event.id.sensor).or_insert(0);
            *mark = (*mark).max(event.id.seq);
            outputs
        };
        self.close_failover_spans(app_idx, now);
        self.handle_outputs(ctx, app_idx, outputs);
    }

    /// Closes any pending `failover` spans for `app_idx`: the first
    /// app-visible activity after a promotion marks the end of the
    /// service interruption measured by the span (Fig. 7 timeline).
    fn close_failover_spans(&mut self, app_idx: usize, now: Time) {
        let pending = {
            let st = self.st.as_mut().expect("initialized");
            std::mem::take(&mut st.apps[app_idx].pending_failover)
        };
        for key in pending {
            self.spec.obs.span_close("failover", key, now);
        }
    }

    /// Routes a newly known event to every active app (Gapless
    /// delivery path and Gap local delivery path).
    fn deliver_to_apps(&mut self, ctx: &mut Context<'_>, event: &Event) {
        self.note_epoch_event(ctx, event);
        let n_apps = self.st.as_ref().expect("initialized").apps.len();
        for idx in 0..n_apps {
            let active = self.st.as_ref().expect("initialized").apps[idx]
                .exec
                .is_active();
            if active {
                self.process_at_app(ctx, idx, event);
            }
        }
    }

    /// Marks polling-epoch satisfaction and cancels pending poll timers
    /// when an event for the current epoch arrives by any path.
    fn note_epoch_event(&mut self, ctx: &mut Context<'_>, event: &Event) {
        let Some(epoch) = event.epoch else { return };
        let sensor = event.id.sensor;
        let st = self.st.as_mut().expect("initialized");
        let Some(rt) = st.sensors.get_mut(&sensor) else {
            return;
        };
        let Some(poll) = rt.poll.as_mut() else { return };
        if poll.state.on_event(epoch) {
            ctx.cancel_timer(token(KIND_SLOT, sensor.as_u32()));
            ctx.cancel_timer(token(KIND_REPOLL, sensor.as_u32()));
        }
    }

    /// Applies delivery-service actions (sends + local deliveries).
    ///
    /// With the execution ring enabled, `Deliver` actions queue their
    /// events on the SPSC ring and the ring drains in batches after
    /// the action loop. App processing only ever *queues* sends (via
    /// the outbox) and actuations — it never re-enters this function —
    /// so batching the deliveries keeps per-sensor order and the
    /// delivered set identical to the inline path; only the handoff
    /// cost changes.
    fn apply_actions(&mut self, ctx: &mut Context<'_>, actions: Vec<Action>) {
        let mut queued = 0u64;
        for action in actions {
            match action {
                Action::Send { to, msg } => self.send_proc(to, &msg),
                Action::Fanout { to, msg } => self.send_fanout(&to, &msg),
                Action::Deliver { event } => {
                    self.note_received(&event);
                    let inline = {
                        let st = self.st.as_mut().expect("initialized");
                        match &st.exec_ring {
                            Some(ring) => match ring.push(event) {
                                Ok(()) => {
                                    queued += 1;
                                    None
                                }
                                // Full ring: deliver this one inline
                                // rather than blocking or dropping, so
                                // capacity bounds batching, never
                                // correctness.
                                Err(event) => {
                                    st.ring_counts.fallbacks += 1;
                                    Some(event)
                                }
                            },
                            None => Some(event),
                        }
                    };
                    if let Some(event) = inline {
                        self.deliver_to_apps(ctx, &event);
                    }
                }
            }
        }
        if queued > 0 {
            self.st.as_mut().expect("initialized").ring_counts.pushes += queued;
            self.drain_exec_ring(ctx);
        }
    }

    /// How many events one ring drain iteration moves at most; bounds
    /// the scratch buffer while still amortizing the consumer's
    /// acquire load over a burst.
    const RING_DRAIN_BATCH: usize = 64;

    /// Drains the delivery→execution ring in batches, routing each
    /// event to the active apps. The scratch vector is recycled across
    /// drains so steady-state batching allocates nothing.
    fn drain_exec_ring(&mut self, ctx: &mut Context<'_>) {
        loop {
            let mut batch = {
                let st = self.st.as_mut().expect("initialized");
                let Some(ring) = &st.exec_ring else { return };
                st.ring_max_depth = st.ring_max_depth.max(ring.len());
                let mut scratch = std::mem::take(&mut st.ring_scratch);
                scratch.clear();
                if ring.pop_batch(&mut scratch, Self::RING_DRAIN_BATCH) == 0 {
                    st.ring_scratch = scratch;
                    return;
                }
                st.ring_counts.pops += scratch.len() as u64;
                st.ring_counts.batches += 1;
                scratch
            };
            for event in &batch {
                self.deliver_to_apps(ctx, event);
            }
            batch.clear();
            self.st.as_mut().expect("initialized").ring_scratch = batch;
        }
    }

    /// Advances the cumulative *received* watermark for a replicated
    /// event. Called only from the post-durability-gate `Deliver` arm:
    /// the watermark advertises durable possession, so it must never
    /// run ahead of the WAL.
    fn note_received(&mut self, event: &Event) {
        let st = self.st.as_mut().expect("initialized");
        let mark = st.received_marks.entry(event.id.sensor).or_insert(0);
        *mark = (*mark).max(event.id.seq);
    }

    /// Applies delivery-service actions *through the durability gate*:
    /// every freshly stored event (each `Deliver` action carries
    /// exactly one) is appended to the WAL, and no action — delivery,
    /// ring forward, broadcast relay, or ack — takes effect until the
    /// append is durable. Under group commit the actions queue until
    /// the policy (or the flush timer / tick backstop) flushes the
    /// batch. Without storage this is plain [`Self::apply_actions`].
    fn apply_actions_durably(&mut self, ctx: &mut Context<'_>, actions: Vec<Action>) {
        if actions.is_empty() {
            return;
        }
        let ready = {
            let st = self.st.as_mut().expect("initialized");
            match st.wal.as_mut() {
                None => Some(actions),
                Some(wal) => {
                    for action in actions {
                        if let Action::Deliver { event } = &action {
                            wal.append_event(event).expect("wal append");
                        }
                        st.gated.push(action);
                    }
                    if wal.pending_events() == 0 {
                        let mut out = Vec::new();
                        st.gated.drain_into(&mut out);
                        Some(out)
                    } else if st.gated.len() >= st.gate.bound() {
                        // Back-pressure: a broadcast storm outran the
                        // flush policy. Force the group commit now so
                        // gated actions (and their memory) stay
                        // bounded; the adaptive gate grows the bound so
                        // the next burst batches more per flush.
                        wal.flush().expect("wal flush");
                        st.gate.on_forced_flush();
                        self.spec.obs.inc("wal.forced_flushes");
                        let mut out = Vec::new();
                        st.gated.drain_into(&mut out);
                        Some(out)
                    } else {
                        None
                    }
                }
            }
        };
        if let Some(actions) = ready {
            self.apply_actions(ctx, actions);
        }
    }

    /// Flushes the WAL and releases every gated action. Called by the
    /// `EveryInterval` flush timer and as a backstop from the periodic
    /// tick (so an `EveryN` batch that never fills cannot strand its
    /// actions).
    fn flush_wal(&mut self, ctx: &mut Context<'_>) {
        let ready = {
            let st = self.st.as_mut().expect("initialized");
            match st.wal.as_mut() {
                Some(wal) if wal.pending_events() > 0 || !st.gated.is_empty() => {
                    wal.flush().expect("wal flush");
                    // A timer-driven flush at low depth is the signal
                    // that bursts have subsided: walk the bound back.
                    st.gate.on_idle_flush(st.gated.len());
                    let mut out = Vec::new();
                    st.gated.drain_into(&mut out);
                    Some(out)
                }
                _ => None,
            }
        };
        if let Some(actions) = ready {
            self.apply_actions(ctx, actions);
        }
    }

    /// Writes a checkpoint of the processed watermarks and compacts
    /// fully-acked segments, then re-arms the checkpoint timer.
    fn checkpoint_fired(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let ready = {
            let st = self.st.as_mut().expect("initialized");
            match st.wal.as_mut() {
                None => None,
                Some(wal) => {
                    let mut marks: Vec<(SensorId, u64)> =
                        st.processed.iter().map(|(s, q)| (*s, *q)).collect();
                    marks.sort_unstable_by_key(|(s, _)| *s);
                    wal.append_checkpoint(&Checkpoint {
                        at: now,
                        processed: marks,
                    })
                    .expect("wal checkpoint");
                    let _ = wal.compact(&st.processed).expect("wal compact");
                    // The checkpoint forced a flush, so everything
                    // gated is now durable; a low-depth checkpoint also
                    // counts as an idle flush for the adaptive bound.
                    st.gate.on_idle_flush(st.gated.len());
                    let mut out = Vec::new();
                    st.gated.drain_into(&mut out);
                    Some(out)
                }
            }
        };
        if let Some(actions) = ready {
            self.apply_actions(ctx, actions);
        }
        if let Some(durability) = &self.spec.storage {
            ctx.set_timer(durability.checkpoint_interval, TOKEN_CHECKPOINT);
        }
    }

    /// Whether any deployed app subscribes to `sensor`. Events of
    /// unsubscribed sensors are dropped at ingest instead of being
    /// stored and replicated: no app will ever process them, so their
    /// watermarks never advance and the store would retain them until
    /// the per-sensor cap — unbounded residency in practice.
    fn sensor_subscribed(&self, sensor: SensorId) -> bool {
        self.st
            .as_ref()
            .expect("initialized")
            .sensors
            .get(&sensor)
            .is_some_and(|rt| !rt.subscribed_apps.is_empty())
    }

    /// Queues one protocol message to one peer. The message is encoded
    /// here, once, into a pooled buffer; actual transmission (and
    /// same-destination coalescing) happens in [`Self::flush_outbox`]
    /// at the end of the activation.
    fn send_proc(&mut self, to: ProcessId, msg: &ProcMsg) {
        if to == self.me() {
            return;
        }
        let st = self.st.as_mut().expect("initialized");
        if !st.peer_actors.contains_key(&to) {
            return;
        }
        let payload = st.outbox.pool.encode(msg);
        st.outbox.queue.push((to, payload));
    }

    /// Encode-once fan-out: encodes `msg` a single time and queues a
    /// cheap [`Bytes`] clone per destination, instead of re-encoding
    /// for every peer.
    fn send_fanout(&mut self, to: &[ProcessId], msg: &ProcMsg) {
        let me = self.me();
        let st = self.st.as_mut().expect("initialized");
        let targets: Vec<ProcessId> = to
            .iter()
            .copied()
            .filter(|p| *p != me && st.peer_actors.contains_key(p))
            .collect();
        if targets.is_empty() {
            return;
        }
        let payload = st.outbox.pool.encode(msg);
        if targets.len() > 1 {
            st.outbox
                .stats
                .record_encode_reuse((payload.len() * (targets.len() - 1)) as u64);
        }
        for t in targets {
            st.outbox.queue.push((t, payload.clone()));
        }
    }

    /// Drains the outbox at the end of an activation. With coalescing
    /// enabled, messages to the same destination are folded into one
    /// multi-command [`Frame`] (frame assembly concatenates the
    /// already-encoded parts — nothing is re-encoded); with it
    /// disabled, entries go out individually in queue order. Both the
    /// grouping and its order are pure functions of the activation's
    /// queue, so delivery stays deterministic.
    fn flush_outbox(&mut self, ctx: &mut Context<'_>) {
        let coalesce = self.spec.config.coalescing;
        let Some(st) = self.st.as_mut() else { return };
        let Initialized {
            outbox,
            peer_actors,
            ..
        } = st;
        if outbox.queue.is_empty() {
            return;
        }
        // Fast path: the common activation queues a single message
        // (one ring forward, one ack, one poll) — nothing to group.
        if outbox.queue.len() == 1 {
            let (to, payload) = outbox.queue.pop().expect("one entry");
            if let Some(actor) = peer_actors.get(&to).copied() {
                ctx.send(actor, payload);
            }
            return;
        }
        if !coalesce {
            for (to, payload) in outbox.queue.drain(..) {
                if let Some(actor) = peer_actors.get(&to).copied() {
                    ctx.send(actor, payload);
                }
            }
            return;
        }
        // Group by destination in first-appearance order. Destinations
        // are few (home-scale peer counts), so a linear scan beats a
        // map here and preserves order for free. Group storage is
        // recycled scratch: drained queue, reused group vector, and
        // part lists returned by earlier flushes.
        for (to, payload) in outbox.queue.drain(..) {
            match outbox.groups.iter_mut().find(|(p, _)| *p == to) {
                Some((_, parts)) => parts.push(payload),
                None => {
                    let mut parts = outbox.spare_parts.pop().unwrap_or_default();
                    parts.push(payload);
                    outbox.groups.push((to, parts));
                }
            }
        }
        // Floods queue the *same* parts (cheap clones of one encoding)
        // for every destination, so the assembled frame can itself be
        // encoded once and cheap-cloned: identity of the backing
        // buffers proves the byte content is identical. `last_multi`
        // remembers the previous multi-part group (still alive in the
        // scratch) and its assembled frame.
        let mut last_multi: Option<(usize, Bytes)> = None;
        for i in 0..outbox.groups.len() {
            let to = outbox.groups[i].0;
            let Some(actor) = peer_actors.get(&to).copied() else {
                continue;
            };
            if outbox.groups[i].1.len() == 1 {
                let payload = outbox.groups[i].1.pop().expect("one part");
                ctx.send(actor, payload);
                continue;
            }
            outbox.stats.record_frame(outbox.groups[i].1.len());
            let framed = match &last_multi {
                Some((prev, frame)) if same_parts(&outbox.groups[*prev].1, &outbox.groups[i].1) => {
                    outbox.stats.record_encode_reuse(frame.len() as u64);
                    frame.clone()
                }
                _ => {
                    let mut w = outbox.pool.checkout();
                    let framed = Frame::encode_parts(&mut w, &outbox.groups[i].1);
                    outbox.pool.put_back(w);
                    last_multi = Some((i, framed.clone()));
                    framed
                }
            };
            ctx.send(actor, framed);
        }
        // Recycle the scratch: drop the queued `Bytes` clones but keep
        // every vector's capacity for the next activation.
        for (_, mut parts) in outbox.groups.drain(..) {
            parts.clear();
            outbox.spare_parts.push(parts);
        }
    }

    /// Handles operator outputs: actuation routing and alerts.
    fn handle_outputs(
        &mut self,
        ctx: &mut Context<'_>,
        app_idx: usize,
        outputs: Vec<crate::app::RuntimeOutput>,
    ) {
        let now = ctx.now();
        let me = self.me();
        for out in outputs {
            match out.output {
                OpOutput::Actuate { actuator, kind } => {
                    let command = {
                        let st = self.st.as_mut().expect("initialized");
                        let seq = st.cmd_seq.entry(out.operator).or_insert(0);
                        let id = CommandId::new(me, out.operator, *seq);
                        *seq += 1;
                        let command = Command::new(id, actuator, kind, now);
                        st.apps[app_idx].probe.record_command(now, command.clone());
                        command
                    };
                    self.spec.obs.inc("app.commands");
                    self.close_failover_spans(app_idx, now);
                    self.route_command(ctx, command);
                }
                OpOutput::Alert { message } => {
                    {
                        let st = self.st.as_ref().expect("initialized");
                        st.apps[app_idx].probe.record_alert(now, me, message);
                    }
                    self.spec.obs.inc("app.alerts");
                }
                OpOutput::RunRoutine { routine } => {
                    self.run_routine(ctx, out.operator, routine);
                }
                OpOutput::Emit { .. } => {
                    // Internal cascades were resolved inside the runtime.
                }
            }
        }
    }

    /// Triggers a staged all-or-nothing firing of `routine` (§4.7).
    /// Silently ignored when [`RivuletConfig::routines`] is off or the
    /// id is undeployed, so apps can request routines unconditionally.
    fn run_routine(&mut self, ctx: &mut Context<'_>, operator: OperatorId, routine: RoutineId) {
        let now = ctx.now();
        let me = self.me();
        let st = self.st.as_mut().expect("initialized");
        let Some(engine) = st.routines.as_mut() else {
            return;
        };
        let Some(spec) = engine.spec(routine) else {
            return;
        };
        // Staging frames go over local radio links only: if any target
        // actuator is not adapted by this coordinator, refuse the
        // trigger outright — nothing staged, nothing to clean up.
        let unreachable = spec.actuators().iter().any(|a| {
            st.actuators
                .get(a)
                .is_none_or(|(_, reachers)| !reachers.contains(&me))
        });
        if unreachable {
            engine.note_unreachable(routine);
            self.spec.obs.inc("routine.unreachable");
            return;
        }
        let cmd_seq = &mut st.cmd_seq;
        let Some(plan) = engine.trigger(routine, now, |actuator, kind| {
            let seq = cmd_seq.entry(operator).or_insert(0);
            let id = CommandId::new(me, operator, *seq);
            *seq += 1;
            Command::new(id, actuator, kind, now)
        }) else {
            return;
        };
        // Write-ahead: the Staged entry is durable before any stage
        // frame leaves, so a crash mid-staging recovers to a clean
        // abort instead of orphaned held commands.
        if let Some(wal) = st.wal.as_mut() {
            wal.append_ledger(&plan.entry).expect("ledger append");
        }
        self.spec.obs.inc("routine.triggered");
        for (actuator, step, command) in plan.stages {
            let device = st.actuators[&actuator].0;
            ctx.send(
                device,
                RadioFrame::Stage {
                    routine,
                    instance: plan.instance,
                    step,
                    command,
                }
                .to_payload(),
            );
        }
        ctx.set_timer(
            self.spec.config.routine_stage_timeout,
            token(KIND_ROUTINE, plan.instance as u32),
        );
    }

    /// An actuator acknowledged (or refused) a staged routine step.
    fn on_stage_ack(
        &mut self,
        ctx: &mut Context<'_>,
        routine: RoutineId,
        instance: u64,
        step: u32,
        accepted: bool,
    ) {
        let now = ctx.now();
        let outcome = {
            let st = self.st.as_mut().expect("initialized");
            let Some(engine) = st.routines.as_mut() else {
                return;
            };
            engine.on_stage_ack(routine, instance, step, accepted, now)
        };
        self.spec.obs.inc("routine.stage_acks");
        match outcome {
            AckOutcome::Ignored => {}
            AckOutcome::Commit { entry, targets } => {
                ctx.cancel_timer(token(KIND_ROUTINE, instance as u32));
                let st = self.st.as_mut().expect("initialized");
                // Write-ahead: the commit decision is durable before
                // any fire frame leaves; recovery re-drives the
                // idempotent commit if we crash mid-burst.
                if let Some(wal) = st.wal.as_mut() {
                    wal.append_ledger(&entry).expect("ledger append");
                }
                for actuator in targets {
                    let device = st.actuators[&actuator].0;
                    ctx.send(
                        device,
                        RadioFrame::CommitRoutine { routine, instance }.to_payload(),
                    );
                }
                self.spec.obs.inc("routine.committed");
            }
            AckOutcome::Abort(plan) => {
                ctx.cancel_timer(token(KIND_ROUTINE, instance as u32));
                self.abort_routine(ctx, plan, true);
            }
        }
    }

    /// The staging timeout fired for `instance`: abort it unless the
    /// last ack raced the timer and already resolved the firing.
    fn routine_timeout_fired(&mut self, ctx: &mut Context<'_>, instance: u64) {
        let now = ctx.now();
        let plan = {
            let st = self.st.as_mut().expect("initialized");
            let Some(engine) = st.routines.as_mut() else {
                return;
            };
            engine.on_timeout(instance, now)
        };
        let Some(plan) = plan else {
            return;
        };
        self.spec.obs.inc("routine.timeouts");
        self.abort_routine(ctx, plan, true);
    }

    /// Aborts a firing: makes the `Aborted` entry durable (unless the
    /// caller already did, e.g. recovery), tells every target to
    /// discard its held steps, and issues the declared compensation
    /// commands as plain actuations (recorded as a `Compensated`
    /// entry *before* they are routed — write-ahead).
    fn abort_routine(&mut self, ctx: &mut Context<'_>, plan: AbortPlan, append_entry: bool) {
        let now = ctx.now();
        let me = self.me();
        {
            let st = self.st.as_mut().expect("initialized");
            if append_entry {
                if let Some(wal) = st.wal.as_mut() {
                    wal.append_ledger(&plan.entry).expect("ledger append");
                }
            }
            for actuator in &plan.targets {
                if let Some((device, reachers)) = st.actuators.get(actuator) {
                    if reachers.contains(&me) {
                        ctx.send(
                            *device,
                            RadioFrame::AbortRoutine {
                                routine: plan.routine,
                                instance: plan.instance,
                            }
                            .to_payload(),
                        );
                    }
                }
            }
        }
        self.spec.obs.inc("routine.aborted");
        if plan.compensations.is_empty() {
            return;
        }
        let commands = {
            let st = self.st.as_mut().expect("initialized");
            let mut commands = Vec::with_capacity(plan.compensations.len());
            let mut issued = Vec::with_capacity(plan.compensations.len());
            for (actuator, kind) in plan.compensations {
                let seq = st.cmd_seq.entry(OP_COMPENSATION).or_insert(0);
                let id = CommandId::new(me, OP_COMPENSATION, *seq);
                *seq += 1;
                issued.push((actuator, id));
                commands.push(Command::new(id, actuator, kind, now));
            }
            let engine = st.routines.as_mut().expect("routines on");
            let entry = engine.record_compensated(plan.routine, plan.instance, now, issued);
            if let Some(wal) = st.wal.as_mut() {
                wal.append_ledger(&entry).expect("ledger append");
            }
            commands
        };
        for command in commands {
            self.route_command(ctx, command);
        }
        self.spec.obs.inc("routine.compensated");
    }

    /// Replays the routine-recovery verdicts computed during
    /// [`RivuletProcess::initialize`], once `st` exists.
    fn replay_routine_recovery(&mut self, ctx: &mut Context<'_>, actions: Vec<RecoveryAction>) {
        let me = self.me();
        for action in actions {
            match action {
                RecoveryAction::Recommit {
                    routine,
                    instance,
                    targets,
                } => {
                    self.spec.obs.inc("routine.recommits");
                    let st = self.st.as_ref().expect("initialized");
                    for actuator in targets {
                        if let Some((device, reachers)) = st.actuators.get(&actuator) {
                            if reachers.contains(&me) {
                                ctx.send(
                                    *device,
                                    RadioFrame::CommitRoutine { routine, instance }.to_payload(),
                                );
                            }
                        }
                    }
                }
                RecoveryAction::AbortStaged(plan) => {
                    self.spec.obs.inc("routine.recovered_aborts");
                    self.abort_routine(ctx, plan, true);
                }
            }
        }
    }

    /// Sends a command to the actuator: directly via the local adapter
    /// when reachable, otherwise forwarded to the closest live process
    /// with an active actuator node (§4's "analogous" command path).
    fn route_command(&mut self, ctx: &mut Context<'_>, command: Command) {
        let now = ctx.now();
        let me = self.me();
        let (device, reachers) = {
            let st = self.st.as_ref().expect("initialized");
            let Some((device, reachers)) = st.actuators.get(&command.actuator) else {
                return;
            };
            (*device, reachers.clone())
        };
        if reachers.contains(&me) {
            ctx.send(device, RadioFrame::Actuate(command).to_payload());
            return;
        }
        let target = {
            let st = self.st.as_ref().expect("initialized");
            reachers
                .iter()
                .copied()
                .find(|p| st.membership.is_alive(*p, now))
        };
        if let Some(target) = target {
            self.send_proc(target, &ProcMsg::CmdForward { command });
        }
    }

    /// An event arrived from a physical sensor via the local adapter.
    fn on_sensor_event(&mut self, ctx: &mut Context<'_>, event: Event) {
        let now = ctx.now();
        let me = self.me();
        self.note_epoch_event(ctx, &event);
        let delivery = {
            let st = self.st.as_ref().expect("initialized");
            match st.sensors.get(&event.id.sensor) {
                Some(rt) => rt.delivery,
                None => return, // unknown device: ignore
            }
        };
        if !self.sensor_subscribed(event.id.sensor) {
            return; // no app will ever process it: do not store/replicate
        }
        match delivery {
            Delivery::Gapless
                if self.spec.config.forwarding == crate::config::ForwardingMode::EagerBroadcast =>
            {
                // Fig. 5 baseline: flood to all peers unless the event
                // already arrived from another process. The flood goes
                // through the rbcast state machine so the origin tracks
                // which peers still owe an acknowledgement — per-event
                // `BroadcastAck`s or (default) the cumulative received
                // watermarks on their keep-alive beacons.
                let (deliver, flood) = {
                    let st = self.st.as_mut().expect("initialized");
                    let deliver = st.gapless.on_broadcast_copy(event.clone());
                    let flood = if deliver.is_some() {
                        let view = st.membership.view(now);
                        st.rbcast.start(event, &view, now)
                    } else {
                        Vec::new()
                    };
                    (deliver, flood)
                };
                if let Some(action) = deliver {
                    let mut actions = vec![action];
                    actions.extend(flood);
                    self.apply_actions_durably(ctx, actions);
                }
            }
            Delivery::Gapless => {
                let (actions, broadcast) = {
                    let st = self.st.as_mut().expect("initialized");
                    let view = st.membership.view(now);
                    let successor = st.membership.ring_successor(now);
                    let tracked = event.clone();
                    let outcome = st.gapless.on_local_ingest(event, &view, successor);
                    if !outcome.actions.is_empty() {
                        // Fresh ingest: register replication tracking.
                        // The ring carries the event (no extra traffic);
                        // peers retire the entry via their keep-alive
                        // received watermarks, and an entry that
                        // outlives the failure timeout escalates to a
                        // flood — closing the silent-stall window where
                        // a ring message dies with a crashed hop and no
                        // survivor ever observes the stall condition.
                        st.rbcast.track(tracked, &view, now);
                    }
                    (outcome.actions, outcome.start_broadcast)
                };
                self.apply_actions_durably(ctx, actions);
                if let Some(ev) = broadcast {
                    self.start_broadcast(ctx, ev);
                }
            }
            Delivery::Gap => {
                let role = {
                    let st = self.st.as_ref().expect("initialized");
                    let rt = st.sensors.get(&event.id.sensor).expect("known sensor");
                    // The Gap chain follows the placement chain of the
                    // first subscribing app.
                    let Some(&app_idx) = rt.subscribed_apps.first() else {
                        return;
                    };
                    let app = &st.apps[app_idx];
                    let membership = &st.membership;
                    let Some(active) = app.exec.believed_active(|p| membership.is_alive(p, now))
                    else {
                        return;
                    };
                    gap::role_of(
                        me,
                        app.exec.chain(),
                        &rt.reachers,
                        |p| membership.is_alive(p, now),
                        active,
                    )
                };
                match role {
                    GapRole::DeliverLocally => self.deliver_to_apps(ctx, &event),
                    GapRole::ForwardTo(target) => {
                        self.send_proc(target, &ProcMsg::GapForward { event });
                    }
                    GapRole::Discard => {}
                }
            }
        }
    }

    fn start_broadcast(&mut self, ctx: &mut Context<'_>, event: Event) {
        let actions = {
            let now = ctx.now();
            let st = self.st.as_mut().expect("initialized");
            let view = st.membership.view(now);
            st.rbcast.start(event, &view, now)
        };
        // Broadcasting advertises possession: gate it like any other
        // delivery action (the event itself was appended when it was
        // first stored, so this queues behind that flush).
        self.apply_actions_durably(ctx, actions);
    }

    /// A protocol message arrived from a peer process.
    fn on_proc_msg(&mut self, ctx: &mut Context<'_>, msg: ProcMsg) {
        let now = ctx.now();
        // Any traffic proves liveness.
        let sender = match &msg {
            ProcMsg::KeepAlive { from, .. }
            | ProcMsg::SyncRequest { from }
            | ProcMsg::SyncReply { from, .. }
            | ProcMsg::BroadcastAck { from, .. } => Some(*from),
            ProcMsg::Broadcast { origin, .. } => Some(*origin),
            _ => None,
        };
        if let Some(from) = sender {
            self.st
                .as_mut()
                .expect("initialized")
                .membership
                .heard_from(from, now);
        }
        match msg {
            ProcMsg::KeepAlive {
                from,
                processed,
                received,
            } => {
                let cumulative = self.spec.config.ack_mode == AckMode::Cumulative;
                let st = self.st.as_mut().expect("initialized");
                for (sensor, seq) in processed {
                    let mark = st.processed.entry(sensor).or_insert(0);
                    *mark = (*mark).max(seq);
                }
                // The peer's durable-receipt watermarks acknowledge
                // every covered pending broadcast in one beacon. Each
                // retirement in cumulative mode is one per-event ack
                // message that never had to cross the wire.
                if !received.is_empty() {
                    let retired = st.rbcast.on_cumulative_ack(from, &received);
                    if retired > 0 && cumulative {
                        st.outbox.stats.record_acks_avoided(retired as u64);
                    }
                }
            }
            ProcMsg::Ring { event, seen, need } => {
                if !self.sensor_subscribed(event.id.sensor) {
                    return;
                }
                let (actions, broadcast) = {
                    let st = self.st.as_mut().expect("initialized");
                    let view = st.membership.view(now);
                    let successor = st.membership.ring_successor(now);
                    let outcome = st.gapless.on_ring(event, seen, need, &view, successor);
                    (outcome.actions, outcome.start_broadcast)
                };
                self.apply_actions_durably(ctx, actions);
                if let Some(ev) = broadcast {
                    self.start_broadcast(ctx, ev);
                }
            }
            ProcMsg::Broadcast { event, origin } => {
                if !self.sensor_subscribed(event.id.sensor) {
                    return;
                }
                let eager =
                    self.spec.config.forwarding == crate::config::ForwardingMode::EagerBroadcast;
                let eager_ack = self.spec.config.ack_mode == AckMode::PerEvent;
                let (deliver, acks) = {
                    let st = self.st.as_mut().expect("initialized");
                    let deliver = st.gapless.on_broadcast_copy(event.clone());
                    // Receivers acknowledge every broadcast copy: per
                    // event (an immediate `BroadcastAck`) or, by
                    // default, cumulatively via the received watermark
                    // on their next keep-alive beacon. In the eager
                    // baseline only the origin floods, so the relay
                    // view is empty; the ring's stall fallback relays
                    // through the full view to survive origin crashes.
                    let view = if eager {
                        Vec::new()
                    } else {
                        st.membership.view(now)
                    };
                    let acks = st.rbcast.on_broadcast(
                        &event,
                        origin,
                        deliver.is_some(),
                        &view,
                        eager_ack,
                        now,
                    );
                    (deliver, acks)
                };
                // Deliver first, then ack — and neither before the
                // event is durable: the ack tells the origin this
                // replica holds the event.
                let mut actions: Vec<Action> = Vec::new();
                actions.extend(deliver);
                actions.extend(acks);
                self.apply_actions_durably(ctx, actions);
            }
            ProcMsg::BroadcastAck { id, from } => {
                self.st
                    .as_mut()
                    .expect("initialized")
                    .rbcast
                    .on_ack(id, from);
            }
            ProcMsg::GapForward { event } => self.deliver_to_apps(ctx, &event),
            ProcMsg::SyncRequest { from } => {
                let action = self
                    .st
                    .as_ref()
                    .expect("initialized")
                    .gapless
                    .on_sync_request(from);
                self.apply_actions(ctx, vec![action]);
            }
            ProcMsg::SyncReply { from, watermarks } => {
                let action = self
                    .st
                    .as_ref()
                    .expect("initialized")
                    .gapless
                    .on_sync_reply(from, &watermarks);
                if let Some(action) = action {
                    self.apply_actions(ctx, vec![action]);
                }
            }
            ProcMsg::SyncEvents { mut events } => {
                events.retain(|e| self.sensor_subscribed(e.id.sensor));
                let actions = self
                    .st
                    .as_mut()
                    .expect("initialized")
                    .gapless
                    .on_sync_events(events);
                self.apply_actions_durably(ctx, actions);
            }
            ProcMsg::CmdForward { command } => {
                let reachable = {
                    let st = self.st.as_ref().expect("initialized");
                    st.actuators
                        .get(&command.actuator)
                        .is_some_and(|(_, reachers)| reachers.contains(&self.spec.pid))
                };
                if reachable {
                    let device =
                        self.st.as_ref().expect("initialized").actuators[&command.actuator].0;
                    ctx.send(device, RadioFrame::Actuate(command).to_payload());
                }
            }
        }
    }

    /// Epoch boundary for a polled sensor: close the previous epoch,
    /// open the next, and arm the slot timer.
    fn epoch_boundary(&mut self, ctx: &mut Context<'_>, sensor: SensorId) {
        let now = ctx.now();
        let me = self.me();
        // Close the previous epoch (skipped on the very first call at
        // time zero).
        let mut missed_for_apps: Vec<usize> = Vec::new();
        let (epoch_len, participates, slot_delay) = {
            let st = self.st.as_mut().expect("initialized");
            let Some(rt) = st.sensors.get_mut(&sensor) else {
                return;
            };
            let delivery = rt.delivery;
            let subscribed = rt.subscribed_apps.clone();
            let reachers = rt.reachers.clone();
            let Some(poll) = rt.poll.as_mut() else { return };
            let epoch_len = poll.state.plan().epoch;
            if now > Time::ZERO && poll.participates {
                let missed = poll.state.on_epoch_end();
                if missed && delivery == Delivery::Gapless {
                    missed_for_apps = subscribed.clone();
                }
            }
            // Which epoch starts now?
            let epoch_idx = now.as_micros() / epoch_len.as_micros().max(1);
            // Participation: Gapless strategies involve every reacher;
            // GapSingle only the designated poller.
            let strategy = poll.state.plan().strategy;
            let participates = match strategy {
                PollStrategy::Coordinated | PollStrategy::Uncoordinated => true,
                PollStrategy::GapSingle => {
                    let app_idx = subscribed.first().copied();
                    match app_idx {
                        None => false,
                        Some(idx) => {
                            let membership = &st.membership;
                            let app = &st.apps[idx];
                            let active = app.exec.believed_active(|p| membership.is_alive(p, now));
                            match active {
                                None => false,
                                Some(active) => {
                                    gap::forwarder(
                                        app.exec.chain(),
                                        &reachers,
                                        |p| membership.is_alive(p, now),
                                        active,
                                    ) == Some(me)
                                }
                            }
                        }
                    }
                }
            };
            let rt = st.sensors.get_mut(&sensor).expect("known sensor");
            let poll = rt.poll.as_mut().expect("poll state");
            poll.participates = participates;
            let slot_delay = poll
                .state
                .on_epoch_start(epoch_idx, participates, ctx.rng());
            (epoch_len, participates, slot_delay)
        };
        // Stale poll timers from the previous epoch must not leak.
        ctx.cancel_timer(token(KIND_SLOT, sensor.as_u32()));
        ctx.cancel_timer(token(KIND_REPOLL, sensor.as_u32()));
        if participates {
            if let Some(delay) = slot_delay {
                ctx.set_timer(delay, token(KIND_SLOT, sensor.as_u32()));
            }
        }
        // Surface misses to active apps (the Gapless exception).
        for idx in missed_for_apps {
            let outputs = {
                let st = self.st.as_mut().expect("initialized");
                let app = &mut st.apps[idx];
                if let Some(runtime) = app.runtime.as_mut() {
                    app.probe.record_epoch_miss();
                    self.spec.obs.inc("app.epoch_misses");
                    runtime.on_epoch_miss(now, sensor)
                } else {
                    Vec::new()
                }
            };
            self.handle_outputs(ctx, idx, outputs);
        }
        // Next boundary.
        ctx.set_timer(epoch_len, token(KIND_EPOCH, sensor.as_u32()));
    }

    fn send_poll(&mut self, ctx: &mut Context<'_>, sensor: SensorId) {
        let (device, epoch) = {
            let st = self.st.as_ref().expect("initialized");
            let Some(rt) = st.sensors.get(&sensor) else {
                return;
            };
            let Some(poll) = rt.poll.as_ref() else { return };
            (rt.device, poll.state.current_epoch())
        };
        ctx.send(
            device,
            RadioFrame::PollRequest { sensor, epoch }.to_payload(),
        );
    }

    fn slot_fired(&mut self, ctx: &mut Context<'_>, sensor: SensorId) {
        let (should_poll, coordinated, latency) = {
            let st = self.st.as_mut().expect("initialized");
            let Some(rt) = st.sensors.get_mut(&sensor) else {
                return;
            };
            let Some(poll) = rt.poll.as_mut() else { return };
            let coordinated = poll.state.plan().strategy == PollStrategy::Coordinated;
            let latency = poll.state.plan().poll_latency;
            (poll.state.on_slot(), coordinated, latency)
        };
        if should_poll {
            self.send_poll(ctx, sensor);
            if coordinated {
                ctx.set_timer(
                    latency + self.spec.config.repoll_margin,
                    token(KIND_REPOLL, sensor.as_u32()),
                );
            }
        }
    }

    fn repoll_fired(&mut self, ctx: &mut Context<'_>, sensor: SensorId) {
        let (should_repoll, latency) = {
            let st = self.st.as_mut().expect("initialized");
            let Some(rt) = st.sensors.get_mut(&sensor) else {
                return;
            };
            let Some(poll) = rt.poll.as_mut() else { return };
            (poll.state.on_repoll(), poll.state.plan().poll_latency)
        };
        if should_repoll {
            self.send_poll(ctx, sensor);
            ctx.set_timer(
                latency + self.spec.config.repoll_margin,
                token(KIND_REPOLL, sensor.as_u32()),
            );
        }
    }

    fn window_fired(&mut self, ctx: &mut Context<'_>, idx: usize) {
        let now = ctx.now();
        let Some((app_idx, outputs, period)) = ({
            let st = self.st.as_mut().expect("initialized");
            st.window_timers
                .get(idx)
                .cloned()
                .and_then(|(app_idx, op, stream, period)| {
                    let app = &mut st.apps[app_idx];
                    app.runtime
                        .as_mut()
                        .map(|rt| (app_idx, rt.on_time_trigger(now, op, stream), period))
                })
        }) else {
            return;
        };
        self.handle_outputs(ctx, app_idx, outputs);
        ctx.set_timer(period, token(KIND_WINDOW, idx as u32));
    }
}

impl Actor for RivuletProcess {
    fn on_event(&mut self, ctx: &mut Context<'_>, event: ActorEvent) {
        match event {
            ActorEvent::Start => self.initialize(ctx),
            ActorEvent::Message { from, payload } => {
                if self.st.is_none() {
                    return; // racing message before Start: drop
                }
                let is_peer = self
                    .st
                    .as_ref()
                    .expect("initialized")
                    .peer_actors
                    .values()
                    .any(|a| *a == from);
                if is_peer {
                    // First-byte dispatch: the frame tag is disjoint
                    // from every `ProcMsg` tag. Decoding from the
                    // shared buffer keeps event payload blobs
                    // zero-copy.
                    if Frame::sniff(&payload) {
                        if let Ok(frame) = Frame::from_shared_bytes(&payload) {
                            for msg in frame.msgs {
                                self.on_proc_msg(ctx, msg);
                            }
                        }
                    } else if let Ok(msg) = ProcMsg::from_shared_bytes(&payload) {
                        self.on_proc_msg(ctx, msg);
                    }
                } else if let Ok(frame) = RadioFrame::from_shared_bytes(&payload) {
                    match frame {
                        RadioFrame::Event(event) => self.on_sensor_event(ctx, event),
                        RadioFrame::ActuateAck { .. } => {
                            // Acknowledgements are observable via the
                            // actuator probe; nothing to do here.
                        }
                        RadioFrame::StageAck {
                            routine,
                            instance,
                            step,
                            accepted,
                        } => self.on_stage_ack(ctx, routine, instance, step, accepted),
                        // Devices never send these to processes.
                        RadioFrame::PollRequest { .. }
                        | RadioFrame::Actuate(_)
                        | RadioFrame::Stage { .. }
                        | RadioFrame::CommitRoutine { .. }
                        | RadioFrame::AbortRoutine { .. } => {}
                    }
                }
            }
            ActorEvent::Timer { token: t } => {
                if self.st.is_none() {
                    if t == TOKEN_INIT_RETRY {
                        self.initialize(ctx);
                    }
                    return;
                }
                match (t >> 32, t & 0xffff_ffff) {
                    (0, TOKEN_TICK) => self.tick(ctx),
                    (0, TOKEN_FLUSH) => {
                        self.flush_wal(ctx);
                        if let Some(durability) = &self.spec.storage {
                            if let FlushPolicy::EveryInterval(period) =
                                durability.options.flush_policy
                            {
                                ctx.set_timer(period, TOKEN_FLUSH);
                            }
                        }
                    }
                    (0, TOKEN_CHECKPOINT) => self.checkpoint_fired(ctx),
                    (KIND_EPOCH, s) => self.epoch_boundary(ctx, SensorId(s as u32)),
                    (KIND_SLOT, s) => self.slot_fired(ctx, SensorId(s as u32)),
                    (KIND_REPOLL, s) => self.repoll_fired(ctx, SensorId(s as u32)),
                    (KIND_WINDOW, i) => self.window_fired(ctx, i as usize),
                    (KIND_ROUTINE, i) => self.routine_timeout_fired(ctx, i),
                    _ => {}
                }
            }
        }
        // Everything queued during this activation goes out now, with
        // same-destination messages coalesced into frames.
        self.flush_outbox(ctx);
    }
}
