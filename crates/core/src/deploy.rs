//! Deployment: wiring a home out of hosts, devices, and apps.
//!
//! [`HomeBuilder`] assembles a deployment on either driver: it creates
//! one [`crate::process::RivuletProcess`] actor per
//! host, one device actor per sensor/actuator, and publishes the
//! [`Directory`] — the static facts every process needs (peer actor
//! ids, device reachability, poll latencies). Processes read the
//! directory lazily at start-up, so construction order is free of
//! circular dependencies.

use std::sync::{Arc, OnceLock};

use rivulet_devices::actuator::{ActuatorDevice, ActuatorProbe};
use rivulet_devices::fault::{FaultPlan, FaultProbe};
use rivulet_devices::sensor::{
    EmissionProbe, EmissionSchedule, PayloadSpec, PollProbe, PollSensor, PushSensor,
};
use rivulet_devices::value::ValueModel;
use rivulet_net::actor::{Actor, ActorId};
use rivulet_net::link::ActorClass;
use rivulet_net::live::LiveNet;
use rivulet_net::metrics::FanoutStats;
use rivulet_net::sim::SimNet;
use rivulet_obs::Recorder;
use rivulet_types::{ActuationState, ActuatorId, Duration, ProcessId, SensorId};

use crate::app::AppSpec;
use crate::config::RivuletConfig;
use crate::probe::{AppProbe, ProbeRegistry, StoreProbe};
use crate::process::{DurabilitySpec, ProcessSpec, RivuletProcess};
use crate::routine::{RoutineProbe, RoutineSpec};
use rivulet_storage::{StorageBackend, WalOptions};

/// One sensor's entry in the deployment directory.
#[derive(Debug, Clone)]
pub struct SensorEntry {
    /// The sensor.
    pub id: SensorId,
    /// Its device actor.
    pub actor: ActorId,
    /// Processes whose hosts can talk to it directly (active sensor
    /// nodes, §3.3), sorted by process id.
    pub reachers: Vec<ProcessId>,
    /// Nominal poll answer latency, for poll-based sensors.
    pub poll_latency: Option<Duration>,
}

/// One actuator's entry in the deployment directory.
#[derive(Debug, Clone)]
pub struct ActuatorEntry {
    /// The actuator.
    pub id: ActuatorId,
    /// Its device actor.
    pub actor: ActorId,
    /// Processes whose hosts can drive it (active actuator nodes).
    pub reachers: Vec<ProcessId>,
}

/// The static deployment facts shared by every process.
#[derive(Debug, Clone, Default)]
pub struct DirectoryData {
    /// All processes, sorted by process id.
    pub processes: Vec<(ProcessId, ActorId)>,
    /// All sensors.
    pub sensors: Vec<SensorEntry>,
    /// All actuators.
    pub actuators: Vec<ActuatorEntry>,
}

/// A write-once holder for [`DirectoryData`], shared between the
/// deployment and every process factory.
#[derive(Debug, Default)]
pub struct Directory {
    data: OnceLock<DirectoryData>,
}

impl Directory {
    /// Creates an unfilled directory.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publishes the directory data.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn set(&self, data: DirectoryData) {
        self.data.set(data).expect("directory published twice");
    }

    /// The published data.
    ///
    /// # Panics
    ///
    /// Panics if the directory has not been published yet; processes
    /// use [`Directory::try_get`] to wait politely.
    #[must_use]
    pub fn get(&self) -> &DirectoryData {
        self.data.get().expect("directory not published")
    }

    /// The published data, or `None` before publication.
    #[must_use]
    pub fn try_get(&self) -> Option<&DirectoryData> {
        self.data.get()
    }
}

/// Abstraction over the two drivers, so one deployment path serves
/// both.
pub trait Driver {
    /// Registers an actor (see the drivers' `add_actor`).
    fn add_boxed_actor(
        &mut self,
        name: &str,
        class: ActorClass,
        factory: Box<dyn FnMut() -> Box<dyn Actor> + Send>,
    ) -> ActorId;

    /// The driver's shared fan-out statistics handle. Every process
    /// actor records its encode-once / coalescing savings into this
    /// instance, and the driver reports them via its net metrics.
    fn fanout_stats(&self) -> Arc<FanoutStats>;

    /// The driver's unified observability handle (see `rivulet-obs`).
    /// Every process deployed through [`HomeBuilder`] records into a
    /// clone of this recorder; disabled by default, so deployments pay
    /// nothing unless a harness enables it.
    fn recorder(&self) -> Recorder;
}

impl Driver for SimNet {
    fn add_boxed_actor(
        &mut self,
        name: &str,
        class: ActorClass,
        mut factory: Box<dyn FnMut() -> Box<dyn Actor> + Send>,
    ) -> ActorId {
        self.add_actor(name, class, move || factory())
    }

    fn fanout_stats(&self) -> Arc<FanoutStats> {
        Arc::clone(&self.metrics().fanout)
    }

    fn recorder(&self) -> Recorder {
        SimNet::recorder(self)
    }
}

impl Driver for LiveNet {
    fn add_boxed_actor(
        &mut self,
        name: &str,
        class: ActorClass,
        mut factory: Box<dyn FnMut() -> Box<dyn Actor> + Send>,
    ) -> ActorId {
        self.add_actor(name, class, move || factory())
    }

    fn fanout_stats(&self) -> Arc<FanoutStats> {
        Arc::clone(&self.metrics().fanout)
    }

    fn recorder(&self) -> Recorder {
        LiveNet::recorder(self)
    }
}

enum SensorDecl {
    Push {
        name: String,
        payload: PayloadSpec,
        schedule: EmissionSchedule,
        reachers: Vec<ProcessId>,
        probe: Arc<EmissionProbe>,
    },
    Poll {
        name: String,
        value: ValueModel,
        poll_latency: Duration,
        reachers: Vec<ProcessId>,
        probe: Arc<PollProbe>,
    },
}

struct ActuatorDecl {
    name: String,
    initial: ActuationState,
    reachers: Vec<ProcessId>,
    probe: Arc<ActuatorProbe>,
}

/// Handles to a deployed home.
#[derive(Debug, Clone)]
pub struct Home {
    /// Processes and their actors, sorted by process id.
    pub processes: Vec<(ProcessId, ActorId)>,
    /// Sensors and their device actors.
    pub sensors: Vec<(SensorId, ActorId)>,
    /// Actuators and their device actors.
    pub actuators: Vec<(ActuatorId, ActorId)>,
    /// The published directory.
    pub directory: Arc<Directory>,
}

impl Home {
    /// The actor hosting `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is unknown.
    #[must_use]
    pub fn actor_of(&self, pid: ProcessId) -> ActorId {
        self.processes
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, a)| *a)
            .expect("unknown process")
    }

    /// The device actor of `sensor`.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is unknown.
    #[must_use]
    pub fn sensor_actor(&self, sensor: SensorId) -> ActorId {
        self.sensors
            .iter()
            .find(|(s, _)| *s == sensor)
            .map(|(_, a)| *a)
            .expect("unknown sensor")
    }

    /// The device actor of `actuator`.
    ///
    /// # Panics
    ///
    /// Panics if `actuator` is unknown.
    #[must_use]
    pub fn actuator_actor(&self, actuator: ActuatorId) -> ActorId {
        self.actuators
            .iter()
            .find(|(s, _)| *s == actuator)
            .map(|(_, a)| *a)
            .expect("unknown actuator")
    }
}

/// Per-deployment durable-storage plan: a factory producing one
/// backend per process, plus the WAL tuning shared by all of them.
struct StoragePlan {
    factory: Box<dyn Fn(ProcessId) -> Arc<dyn StorageBackend>>,
    options: WalOptions,
    checkpoint_interval: Duration,
}

/// Fluent builder assembling a home deployment on a driver.
pub struct HomeBuilder<'a, D: Driver> {
    driver: &'a mut D,
    config: RivuletConfig,
    hosts: Vec<String>,
    sensors: Vec<SensorDecl>,
    actuators: Vec<ActuatorDecl>,
    apps: Vec<(Arc<AppSpec>, Arc<AppProbe>)>,
    probes: Arc<ProbeRegistry>,
    storage: Option<StoragePlan>,
    store_probe: Option<Arc<StoreProbe>>,
    faults: Option<FaultPlan>,
    fault_probe: Arc<FaultProbe>,
    routines: Vec<(Arc<RoutineSpec>, Arc<RoutineProbe>)>,
}

impl<D: Driver> std::fmt::Debug for HomeBuilder<'_, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HomeBuilder")
            .field("hosts", &self.hosts.len())
            .field("sensors", &self.sensors.len())
            .field("actuators", &self.actuators.len())
            .field("apps", &self.apps.len())
            .finish()
    }
}

impl<'a, D: Driver> HomeBuilder<'a, D> {
    /// Starts a deployment on `driver` with the default configuration.
    pub fn new(driver: &'a mut D) -> Self {
        Self {
            driver,
            config: RivuletConfig::default(),
            hosts: Vec::new(),
            sensors: Vec::new(),
            actuators: Vec::new(),
            apps: Vec::new(),
            probes: ProbeRegistry::new(),
            storage: None,
            store_probe: None,
            faults: None,
            fault_probe: FaultProbe::new(),
            routines: Vec::new(),
        }
    }

    /// Attaches a device-fault plan: every declared device picks up its
    /// schedule from the plan (devices the plan doesn't name stay
    /// fault-free), and all injected faults are logged to the home's
    /// shared [`FaultProbe`] (see [`HomeBuilder::fault_probe`]).
    /// Injection is reproducible bit-exactly from `(plan seed,
    /// device id)` and never perturbs the drivers' RNG streams.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The home-wide fault probe: ground truth for every injected
    /// fault ([`FaultProbe::ghosts`] / suppressed / corrupted ids).
    /// Event ids recorded in it carry the sensor, so per-device
    /// attribution survives the sharing.
    #[must_use]
    pub fn fault_probe(&self) -> Arc<FaultProbe> {
        Arc::clone(&self.fault_probe)
    }

    /// Replaces the platform configuration used by every process.
    #[must_use]
    pub fn with_config(mut self, config: RivuletConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches durable storage: `factory` yields each process's
    /// backend (call it with the process id so every process gets its
    /// own log; keep the returned `Arc`s if the harness needs to
    /// inject crashes or corruption). Events are then appended to a
    /// write-ahead log before being acked or delivered, checkpoints
    /// are written every `checkpoint_interval`, and recovery replays
    /// the log instead of relying solely on anti-entropy.
    #[must_use]
    pub fn with_storage(
        mut self,
        options: WalOptions,
        checkpoint_interval: Duration,
        factory: impl Fn(ProcessId) -> Arc<dyn StorageBackend> + 'static,
    ) -> Self {
        self.storage = Some(StoragePlan {
            factory: Box::new(factory),
            options,
            checkpoint_interval,
        });
        self
    }

    /// Attaches a store-residency probe sampled by every process on
    /// its periodic tick; returns the shared probe.
    pub fn with_store_probe(&mut self) -> Arc<StoreProbe> {
        let probe = self.store_probe.get_or_insert_with(StoreProbe::new);
        Arc::clone(probe)
    }

    /// Declares a host (TV, fridge, hub, …); returns its process id.
    /// Process ids are assigned in declaration order, which also fixes
    /// ring order and placement tie-breaking.
    pub fn add_host(&mut self, name: impl Into<String>) -> ProcessId {
        let pid = ProcessId(self.hosts.len() as u32);
        self.hosts.push(name.into());
        pid
    }

    /// Declares a push-based sensor reachable by `reachers`; returns
    /// its sensor id and emission probe.
    pub fn add_push_sensor(
        &mut self,
        name: impl Into<String>,
        payload: PayloadSpec,
        schedule: EmissionSchedule,
        reachers: &[ProcessId],
    ) -> (SensorId, Arc<EmissionProbe>) {
        let id = SensorId(self.sensors.len() as u32);
        let probe = EmissionProbe::new();
        let mut sorted = reachers.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.sensors.push(SensorDecl::Push {
            name: name.into(),
            payload,
            schedule,
            reachers: sorted,
            probe: Arc::clone(&probe),
        });
        (id, probe)
    }

    /// Declares a poll-based sensor; returns its sensor id and poll
    /// probe.
    pub fn add_poll_sensor(
        &mut self,
        name: impl Into<String>,
        value: ValueModel,
        poll_latency: Duration,
        reachers: &[ProcessId],
    ) -> (SensorId, Arc<PollProbe>) {
        let id = SensorId(self.sensors.len() as u32);
        let probe = PollProbe::new();
        let mut sorted = reachers.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.sensors.push(SensorDecl::Poll {
            name: name.into(),
            value,
            poll_latency,
            reachers: sorted,
            probe: Arc::clone(&probe),
        });
        (id, probe)
    }

    /// Declares an actuator; returns its actuator id and probe.
    pub fn add_actuator(
        &mut self,
        name: impl Into<String>,
        initial: ActuationState,
        reachers: &[ProcessId],
    ) -> (ActuatorId, Arc<ActuatorProbe>) {
        let id = ActuatorId(self.actuators.len() as u32);
        let probe = ActuatorProbe::new(initial);
        let mut sorted = reachers.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.actuators.push(ActuatorDecl {
            name: name.into(),
            initial,
            reachers: sorted,
            probe: Arc::clone(&probe),
        });
        (id, probe)
    }

    /// Deploys an application home-wide; returns its probe.
    ///
    /// # Panics
    ///
    /// Panics if the app graph is invalid.
    pub fn add_app(&mut self, app: AppSpec) -> Arc<AppProbe> {
        app.validate().expect("invalid app graph");
        let probe = self.probes.probe(app.id);
        self.apps.push((Arc::new(app), Arc::clone(&probe)));
        probe
    }

    /// Deploys a routine home-wide; returns its probe. Routines only
    /// fire when [`RivuletConfig::routines`] is on — deploying them
    /// with the knob off changes nothing (bit-identical runs).
    ///
    /// # Panics
    ///
    /// Panics on an empty routine or a duplicate routine id.
    pub fn add_routine(&mut self, routine: RoutineSpec) -> Arc<RoutineProbe> {
        assert!(!routine.steps.is_empty(), "routine has no steps");
        assert!(
            self.routines.iter().all(|(r, _)| r.id != routine.id),
            "duplicate routine id {:?}",
            routine.id
        );
        let probe = RoutineProbe::new();
        self.routines.push((Arc::new(routine), Arc::clone(&probe)));
        probe
    }

    /// Creates all actors and publishes the directory.
    #[must_use]
    pub fn build(self) -> Home {
        let directory = Directory::new();

        // Processes first (they defer directory reads to start-up).
        let fanout = self.driver.fanout_stats();
        let obs = self.driver.recorder();
        let mut processes = Vec::new();
        for (i, name) in self.hosts.iter().enumerate() {
            let pid = ProcessId(i as u32);
            let spec = ProcessSpec {
                pid,
                config: self.config.clone(),
                apps: self.apps.clone(),
                directory: Arc::clone(&directory),
                storage: self.storage.as_ref().map(|plan| DurabilitySpec {
                    backend: (plan.factory)(pid),
                    options: plan.options,
                    checkpoint_interval: plan.checkpoint_interval,
                }),
                store_probe: self.store_probe.clone(),
                fanout: Arc::clone(&fanout),
                obs: obs.clone(),
                routines: self.routines.clone(),
            };
            let actor = self.driver.add_boxed_actor(
                name,
                ActorClass::Process,
                Box::new(move || Box::new(RivuletProcess::new(spec.clone()))),
            );
            processes.push((pid, actor));
        }

        // Devices next: they multicast to the (now known) process
        // actors.
        let actor_of = |pid: ProcessId| {
            processes
                .iter()
                .find(|(p, _)| *p == pid)
                .map(|(_, a)| *a)
                .expect("reacher declared before build")
        };
        let mut sensor_entries = Vec::new();
        let mut sensor_actors = Vec::new();
        let faults = self.faults;
        let fault_probe = self.fault_probe;
        for (i, decl) in self.sensors.into_iter().enumerate() {
            let id = SensorId(i as u32);
            match decl {
                SensorDecl::Push {
                    name,
                    payload,
                    schedule,
                    reachers,
                    probe,
                } => {
                    let targets: Vec<ActorId> = reachers.iter().map(|p| actor_of(*p)).collect();
                    let plan = faults.clone();
                    let fprobe = Arc::clone(&fault_probe);
                    let fobs = obs.clone();
                    let actor = self.driver.add_boxed_actor(
                        &name,
                        ActorClass::Device,
                        Box::new(move || {
                            // A recovered sensor resumes numbering
                            // after everything it already emitted.
                            let start_seq = probe.emitted();
                            let mut sensor = PushSensor::new(
                                id,
                                payload.clone(),
                                schedule.clone(),
                                targets.clone(),
                                Arc::clone(&probe),
                            )
                            .with_start_seq(start_seq);
                            if let Some(plan) = &plan {
                                sensor = sensor
                                    .with_faults(plan.for_sensor(id))
                                    .with_fault_probe(Arc::clone(&fprobe))
                                    .with_obs(fobs.clone());
                            }
                            Box::new(sensor)
                        }),
                    );
                    sensor_entries.push(SensorEntry {
                        id,
                        actor,
                        reachers,
                        poll_latency: None,
                    });
                    sensor_actors.push((id, actor));
                }
                SensorDecl::Poll {
                    name,
                    value,
                    poll_latency,
                    reachers,
                    probe,
                } => {
                    let plan = faults.clone();
                    let fprobe = Arc::clone(&fault_probe);
                    let fobs = obs.clone();
                    let actor = self.driver.add_boxed_actor(
                        &name,
                        ActorClass::Device,
                        Box::new(move || {
                            let start_seq = probe.answered();
                            let mut sensor = PollSensor::new(
                                id,
                                value.clone(),
                                poll_latency,
                                Arc::clone(&probe),
                            )
                            .with_start_seq(start_seq);
                            if let Some(plan) = &plan {
                                sensor = sensor
                                    .with_faults(plan.for_sensor(id))
                                    .with_fault_probe(Arc::clone(&fprobe))
                                    .with_obs(fobs.clone());
                            }
                            Box::new(sensor)
                        }),
                    );
                    sensor_entries.push(SensorEntry {
                        id,
                        actor,
                        reachers,
                        poll_latency: Some(poll_latency),
                    });
                    sensor_actors.push((id, actor));
                }
            }
        }

        let mut actuator_entries = Vec::new();
        let mut actuator_actors = Vec::new();
        for (i, decl) in self.actuators.into_iter().enumerate() {
            let id = ActuatorId(i as u32);
            let ActuatorDecl {
                name,
                initial,
                reachers,
                probe,
            } = decl;
            let plan = faults.clone();
            let fprobe = Arc::clone(&fault_probe);
            let fobs = obs.clone();
            let actor = self.driver.add_boxed_actor(
                &name,
                ActorClass::Device,
                Box::new(move || {
                    let mut dev = ActuatorDevice::new(id, initial, Arc::clone(&probe));
                    if let Some(plan) = &plan {
                        dev = dev
                            .with_faults(plan.for_actuator(id))
                            .with_fault_probe(Arc::clone(&fprobe))
                            .with_obs(fobs.clone());
                    }
                    Box::new(dev)
                }),
            );
            actuator_entries.push(ActuatorEntry {
                id,
                actor,
                reachers,
            });
            actuator_actors.push((id, actor));
        }

        directory.set(DirectoryData {
            processes: processes.clone(),
            sensors: sensor_entries,
            actuators: actuator_entries,
        });

        Home {
            processes,
            sensors: sensor_actors,
            actuators: actuator_actors,
            directory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rivulet_net::sim::SimConfig;

    #[test]
    fn directory_is_write_once() {
        let dir = Directory::new();
        assert!(dir.try_get().is_none());
        dir.set(DirectoryData::default());
        assert!(dir.try_get().is_some());
        assert_eq!(dir.get().processes.len(), 0);
    }

    #[test]
    #[should_panic(expected = "directory published twice")]
    fn directory_double_set_panics() {
        let dir = Directory::new();
        dir.set(DirectoryData::default());
        dir.set(DirectoryData::default());
    }

    #[test]
    fn builder_assigns_sequential_ids_and_publishes() {
        let mut net = SimNet::new(SimConfig::with_seed(1));
        let mut b = HomeBuilder::new(&mut net);
        let hub = b.add_host("hub");
        let tv = b.add_host("tv");
        assert_eq!(hub, ProcessId(0));
        assert_eq!(tv, ProcessId(1));
        let (door, _) = b.add_push_sensor(
            "door",
            PayloadSpec::KindOnly(rivulet_types::EventKind::DoorOpen),
            EmissionSchedule::Periodic(Duration::from_secs(1)),
            &[tv, tv, hub], // duplicates tolerated
        );
        assert_eq!(door, SensorId(0));
        let (light, _) = b.add_actuator("light", ActuationState::Switch(false), &[hub]);
        assert_eq!(light, ActuatorId(0));
        let home = b.build();
        assert_eq!(home.processes.len(), 2);
        let data = home.directory.get();
        assert_eq!(data.sensors[0].reachers, vec![hub, tv], "sorted, deduped");
        assert_eq!(data.actuators[0].reachers, vec![hub]);
        assert_eq!(home.actor_of(hub), home.processes[0].1);
        assert_eq!(home.sensor_actor(door), home.sensors[0].1);
        assert_eq!(home.actuator_actor(light), home.actuators[0].1);
    }
}
