//! Fleet orchestration walk-through: 32 homes, one failure axis.
//!
//! A scenario manifest declares one base home plus two sweep axes —
//! link loss and a mid-run coordinator crash — which expand into 8
//! configurations x 4 replicas = 32 homes. Every home runs as an
//! isolated seeded simulation on the worker pool; per-home
//! `ObsSnapshot`s merge (in home-index order, so the result is
//! byte-identical at any thread count) into one fleet-wide report.
//!
//! Because each home's seed derives purely from
//! `(fleet_seed, home_index)`, any home here can be re-run standalone,
//! bit-exactly — the demo proves it for home 17.
//!
//! ```text
//! cargo run --example fleet_demo
//! ```

use rivulet::fleet::executor::{run_fleet, run_home};
use rivulet::fleet::report::render_summary;
use rivulet::fleet::FleetManifest;

const MANIFEST: &str = r#"
[fleet]
name = "demo"
seed = 42
homes_per_config = 4

[base]
processes = 4
receivers = 2
rate_per_sec = 10
duration_secs = 5.0
delivery = "gapless"
durable = true

[axes]
loss = [0.0, 0.05]
crash_at_secs = [-1.0, 2.5]
ack_mode = ["cumulative", "per_event"]
"#;

fn main() {
    let manifest = FleetManifest::from_text(MANIFEST).expect("demo manifest is well-formed");
    println!(
        "expanding `{}`: {} configs x {} homes/config = {} homes\n",
        manifest.name,
        manifest.config_count(),
        manifest.homes_per_config,
        manifest.fleet_size()
    );

    let outcome = run_fleet(&manifest, 0);
    print!("{}", render_summary(&outcome));

    // The merged snapshot folds every home's counters together:
    // fleet.* totals plus the per-home wal/failover/delivery series.
    println!(
        "\nmerged snapshot: {} homes, {} events delivered, {} WAL appends, {} failover spans",
        outcome.merged.counter("fleet.homes"),
        outcome.merged.counter("fleet.events_total"),
        outcome.merged.counter("wal.appends"),
        outcome.merged.spans_named("failover").len(),
    );

    // Standalone re-run: seed derivation is a pure function of
    // (fleet_seed, home_index), so home 17 replays bit-exactly
    // outside the fleet. The fleet keeps only bounded per-home
    // summaries (full snapshots fold into `merged` as homes finish),
    // so the replay is checked against the retained summary.
    let specs = manifest.expand().expect("validated at parse time");
    let member = &outcome.homes[17];
    let solo = run_home(&specs[17]);
    assert_eq!(solo.summarize(), *member);
    println!(
        "home 17 re-ran standalone: {}/{} delivered, summary bit-exact vs fleet member",
        solo.delivered, solo.emitted
    );
}
