//! Intrusion detection (Listing 1): Gapless delivery + `FTCombiner`.
//!
//! Three door/window sensors with Gapless delivery feed an `Intrusion`
//! operator tolerating n−1 sensor failures; every door-open event
//! raises an alert and sounds the siren. We inject 25 % loss on every
//! sensor→process link and crash one process mid-run — and still no
//! ingested event is lost, because the Gapless ring replicates each
//! event at every available process.
//!
//! ```text
//! cargo run --example intrusion_detection
//! ```

use rivulet::core::app::{AlertOnEvent, AppBuilder, CombinerSpec, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, Time};

fn main() {
    let mut net = SimNet::new(SimConfig::with_seed(2024));
    let mut home = HomeBuilder::new(&mut net);

    let hub = home.add_host("hub");
    let tv = home.add_host("tv");
    let fridge = home.add_host("fridge");
    let procs = [hub, tv, fridge];

    // Three door sensors, multicast to every process, sporadic
    // human-scale openings.
    let mut doors = Vec::new();
    for name in ["front-door", "back-door", "garage-door"] {
        let (id, probe) = home.add_push_sensor(
            name,
            PayloadSpec::KindOnly(EventKind::DoorOpen),
            EmissionSchedule::Poisson {
                mean: Duration::from_secs(7),
            },
            &procs,
        );
        doors.push((name, id, probe));
    }
    let (siren, siren_probe) = home.add_actuator("siren", ActuationState::Switch(false), &[hub]);

    // Listing 1: FTCombiner(n-1), CountWindow(1), GAPLESS.
    let n = doors.len();
    let mut op = AppBuilder::new(AppId(1), "intrusion").operator(
        "Intrusion",
        CombinerSpec::tolerate_fail_stop(n),
        AlertOnEvent {
            message: "intrusion detected".into(),
            siren: Some(siren),
        },
    );
    for (_, id, _) in &doors {
        op = op.sensor(*id, Delivery::Gapless, WindowSpec::count(1));
    }
    let app = op
        .actuator(siren, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();

    // A hostile environment: every radio link drops 25 % of frames,
    // and the fridge crashes at t=40 s, recovering at t=80 s.
    for (_, id, _) in &doors {
        let device = home.sensor_actor(*id);
        for p in procs {
            net.topology_mut().set_loss(device, home.actor_of(p), 0.25);
        }
    }
    net.crash_at(home.actor_of(fridge), Time::from_secs(40));
    net.recover_at(home.actor_of(fridge), Time::from_secs(80));

    net.run_until(Time::from_secs(120));

    let emitted: u64 = doors.iter().map(|(_, _, p)| p.emitted()).sum();
    // How many distinct events were ingested by at least one process?
    // With three independent 25%-loss links, ~98.4% of emissions.
    let delivered = probe.unique_delivered();
    let alerts = probe.alerts().len();
    println!("door events emitted:            {emitted}");
    println!("distinct events reaching logic: {delivered}");
    println!("alerts raised:                  {alerts}");
    println!(
        "siren actuations:               {}",
        siren_probe.effect_count()
    );
    println!(
        "active logic node history:      {:?}",
        probe
            .transitions()
            .iter()
            .map(|(t, p, a)| format!("{t}:{p}:{}", if *a { "active" } else { "shadow" }))
            .collect::<Vec<_>>()
    );

    assert!(
        delivered as f64 >= emitted as f64 * 0.93,
        "gapless should survive this"
    );
    assert!(siren_probe.effect_count() > 0);
    println!("intrusion detection OK");
}
