//! Elder care: the Table 1 safety apps that motivated Gapless delivery.
//!
//! * **Fall alert** — a BLE wearable (heard by *one* host only, the
//!   paper's single-reacher case) emits a fall event; the alert must
//!   reach the caregiver even though the hosting process crashes
//!   moments later. The Gapless ring has already replicated the event,
//!   so the replacement logic node raises the alert.
//! * **Slip&Fall-style inactivity** — bathroom motion stops for a whole
//!   time window; caregivers are notified.
//!
//! ```text
//! cargo run --example elder_care
//! ```

use rivulet::core::app::{AlertOnEvent, AppBuilder, CombinerSpec, InactivityAlert, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, Time};

fn main() {
    let mut net = SimNet::new(SimConfig::with_seed(404));
    let mut home = HomeBuilder::new(&mut net);
    let hub = home.add_host("hub");
    let tv = home.add_host("tv");
    let fridge = home.add_host("fridge");

    // The BLE wearable pairs with a single host — the TV (BLE has no
    // multicast; §3.1). One fall, 30 seconds in.
    let (wearable, _) = home.add_push_sensor(
        "wearable",
        PayloadSpec::KindOnly(EventKind::FallDetected),
        EmissionSchedule::Script(vec![Time::from_secs(30)]),
        &[tv],
    );
    // Bathroom motion stops after t=50s.
    let motion_script: Vec<Time> = (1..=10).map(|i| Time::from_secs(i * 5)).collect();
    let (motion, _) = home.add_push_sensor(
        "bathroom-motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Script(motion_script),
        &[hub, fridge],
    );
    let (pager, _) = home.add_actuator("caregiver-pager", ActuationState::Switch(false), &[hub]);

    let fall_app = AppBuilder::new(AppId(1), "fall-alert")
        .operator(
            "FallAlert",
            CombinerSpec::tolerate_fail_stop(1),
            AlertOnEvent {
                message: "FALL DETECTED — paging caregiver".into(),
                siren: Some(pager),
            },
        )
        .sensor(wearable, Delivery::Gapless, WindowSpec::count(1))
        .actuator(pager, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let fall_probe = home.add_app(fall_app);

    let inactivity_app = AppBuilder::new(AppId(2), "slip-and-fall")
        .operator(
            "Inactivity",
            CombinerSpec::Any,
            InactivityAlert {
                message: "no bathroom activity for 60s".into(),
            },
        )
        .sensor(
            motion,
            Delivery::Gapless,
            WindowSpec::time(Duration::from_secs(60)),
        )
        .done()
        .build()
        .expect("valid app");
    let inactivity_probe = home.add_app(inactivity_app);

    let home = home.build();

    // The cruel twist: the process that heard the fall (and currently
    // hosts the fall app if placement chose it) crashes 300 ms after
    // the event — before a human would have noticed anything.
    net.crash_at(home.actor_of(tv), Time::from_millis(30_300));
    net.run_until(Time::from_secs(180));

    println!("fall alerts:");
    for (t, by, msg) in fall_probe.alerts() {
        println!("  {t} [{by}] {msg}");
    }
    println!("inactivity alerts:");
    for (t, by, msg) in inactivity_probe.alerts() {
        println!("  {t} [{by}] {msg}");
    }

    assert!(
        !fall_probe.alerts().is_empty(),
        "the fall must be reported despite the crash"
    );
    assert!(
        !inactivity_probe.alerts().is_empty(),
        "the inactivity window must fire"
    );
    println!("elder care OK");
}
