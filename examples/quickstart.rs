//! Quickstart: the paper's running example (§3.2–3.3, Fig. 2) on the
//! **live threaded driver**.
//!
//! A door sensor reachable from the TV and the fridge, a light
//! actuator reachable only from the hub, and a `TurnLightOnOff` logic
//! node. Placement puts the active logic node on the hub; the TV's
//! active sensor node forwards door events there over the (emulated)
//! home WiFi; the hub's actuator node drives the light.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::thread::sleep;
use std::time::Duration as StdDuration;

use rivulet::core::app::{AppBuilder, CombinerSpec, SwitchOnEvents, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::live::{LiveConfig, LiveNet};
use rivulet::types::{ActuationState, AppId, Duration, EventKind};

fn main() {
    let mut net = LiveNet::new(LiveConfig::default());
    let mut home = HomeBuilder::new(&mut net);

    let hub = home.add_host("hub");
    let tv = home.add_host("tv");
    let fridge = home.add_host("fridge");
    println!("hosts: hub={hub} tv={tv} fridge={fridge}");

    // The door sensor alternates open/close every 400 ms and is heard
    // by the TV and the fridge (not the hub).
    let (door, door_probe) = home.add_push_sensor(
        "door",
        PayloadSpec::KindOnly(EventKind::DoorOpen),
        EmissionSchedule::Periodic(Duration::from_millis(400)),
        &[tv, fridge],
    );
    let (light, light_probe) = home.add_actuator("light", ActuationState::Switch(false), &[hub]);

    let app = AppBuilder::new(AppId(1), "door-light")
        .operator(
            "TurnLightOnOff",
            CombinerSpec::Any,
            SwitchOnEvents {
                on_kinds: vec![EventKind::DoorOpen],
                off_kinds: vec![EventKind::DoorClose],
                actuator: light,
            },
        )
        .sensor(door, Delivery::Gapless, WindowSpec::count(1))
        .actuator(light, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let app_probe = home.add_app(app);
    let _home = home.build();

    println!("running the home for 3 seconds of wall-clock time…");
    sleep(StdDuration::from_secs(3));

    let emitted = door_probe.emitted();
    let delivered = app_probe.unique_delivered();
    let switched = light_probe.effect_count();
    println!("door emitted {emitted} events");
    println!("TurnLightOnOff processed {delivered} of them");
    println!(
        "light actuated {switched} times; final state {}",
        light_probe.state()
    );
    if let Some(mean) = app_probe.mean_delay() {
        println!("mean sensor→logic delay: {mean}");
    }

    net.shutdown();
    assert!(delivered > 0, "the pipeline must have run");
    println!("quickstart OK");
}
