//! Temperature monitoring (Listing 2): coordinated polling + Marzullo
//! fault-tolerant averaging + threshold HVAC.
//!
//! Four poll-based temperature sensors are polled once per 10-second
//! epoch using the paper's communication-free coordinated schedule. An
//! `Averaging` operator computes the Marzullo fault-tolerant midpoint,
//! tolerating ⌊(n−1)/3⌋ arbitrarily faulty sensors — demonstrated by
//! making one sensor report garbage. The average cascades into an HVAC
//! operator that actuates when the home drifts out of the comfort
//! band.
//!
//! ```text
//! cargo run --example temperature_monitoring
//! ```

use rivulet::core::app::{
    AppBuilder, CombinerSpec, MarzulloAverage, PollSpec, ThresholdHvac, WindowSpec,
};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::devices::value::ValueModel;
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, OperatorId, Time};

fn main() {
    let mut net = SimNet::new(SimConfig::with_seed(77));
    let mut home = HomeBuilder::new(&mut net);
    let hub = home.add_host("hub");
    let tv = home.add_host("tv");
    let fridge = home.add_host("fridge");
    let procs = [hub, tv, fridge];

    // Three honest sensors around 16 °C (chilly!) and one Byzantine
    // sensor reporting a constant absurd 85 °C.
    let mut sensors = Vec::new();
    for (name, model) in [
        (
            "temp-living",
            ValueModel::RandomWalk {
                value: 16.0,
                step: 0.1,
                min: 14.0,
                max: 18.0,
            },
        ),
        (
            "temp-kitchen",
            ValueModel::RandomWalk {
                value: 16.2,
                step: 0.1,
                min: 14.0,
                max: 18.0,
            },
        ),
        (
            "temp-bedroom",
            ValueModel::RandomWalk {
                value: 15.8,
                step: 0.1,
                min: 14.0,
                max: 18.0,
            },
        ),
        ("temp-broken", ValueModel::Constant(85.0)),
    ] {
        let (id, probe) = home.add_poll_sensor(name, model, Duration::from_millis(600), &procs);
        sensors.push((name, id, probe));
    }
    let (hvac, hvac_probe) = home.add_actuator("hvac", ActuationState::Level(16.0), &[hub]);

    // Listing 2 wiring: GAP delivery, per-epoch polling, FTCombiner
    // with arbitrary-failure tolerance.
    let n = sensors.len();
    let mut op = AppBuilder::new(AppId(1), "avg-temp").operator(
        "Averaging",
        CombinerSpec::tolerate_arbitrary(n),
        MarzulloAverage {
            precision: 0.75,
            tolerate: (n - 1) / 3,
        },
    );
    for (_, id, _) in &sensors {
        op = op.polled_sensor(
            *id,
            Delivery::Gapless,
            WindowSpec::count(1).sliding(),
            PollSpec::every(Duration::from_secs(10)),
        );
    }
    let app = op.done();
    let averaging = OperatorId(0);
    let app = app
        .operator(
            "HvacControl",
            CombinerSpec::Any,
            ThresholdHvac {
                low: 18.0,
                high: 26.0,
                hvac,
            },
        )
        .upstream(averaging, WindowSpec::count(1))
        .actuator(hvac, Delivery::Gap)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let _home = home.build();

    net.run_until(Time::from_secs(120));

    println!("polls received per sensor (12 epochs → optimal 12):");
    for (name, _, p) in &sensors {
        println!(
            "  {name:<14} received={:<3} answered={:<3} dropped-busy={}",
            p.received(),
            p.answered(),
            p.dropped_busy()
        );
    }
    let commands = probe.commands();
    println!("HVAC commands issued: {}", commands.len());
    println!("HVAC state: {}", hvac_probe.state());
    println!("epoch misses: {}", probe.epoch_misses());

    // The Byzantine 85 °C sensor must not drag the average up: the
    // home reads ~16 °C, so the HVAC heats toward 18 °C.
    assert_eq!(hvac_probe.state(), ActuationState::Level(18.0));
    // Coordinated polling stays near one poll per epoch per sensor.
    for (name, _, p) in &sensors {
        assert!(p.received() <= 16, "{name} over-polled: {}", p.received());
    }
    println!("temperature monitoring OK");
}
