//! A whole smart home: several Table 1 applications running together
//! on one deployment, each with its surveyed delivery guarantee.
//!
//! * **Automated lighting** (Gap) — motion turns lights on.
//! * **Flood alert** (Gapless) — a moisture event must never be lost.
//! * **Inactive alert** (Gapless) — caregivers notified when no
//!   activity is seen for a whole window.
//! * **Energy billing** (Gapless) — cumulative cost from power events.
//!
//! A network partition splits the home mid-run; both sides keep
//! operating (idempotent actuations), and the sides reconcile when it
//! heals.
//!
//! ```text
//! cargo run --example smart_home_tour
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rivulet::core::app::{
    AlertOnEvent, AppBuilder, CombinedWindows, CombinerSpec, InactivityAlert, OpCtx, OperatorLogic,
    SwitchOnEvents, WindowSpec,
};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::devices::value::ValueModel;
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, Time};

/// Energy-billing logic: integrates power readings into millicents.
struct Billing {
    total_millicents: Arc<AtomicU64>,
}

impl OperatorLogic for Billing {
    fn on_windows(&self, _ctx: &mut OpCtx, input: &CombinedWindows) {
        for value in input.scalars() {
            // 1 kWh-scale reading → toy tariff.
            self.total_millicents
                .fetch_add((value * 10.0) as u64, Ordering::SeqCst);
        }
    }
}

fn main() {
    let mut net = SimNet::new(SimConfig::with_seed(99));
    let mut home = HomeBuilder::new(&mut net);
    let hub = home.add_host("hub");
    let tv = home.add_host("tv");
    let fridge = home.add_host("fridge");
    let washer = home.add_host("washer");
    let all = [hub, tv, fridge, washer];

    let (motion, _) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Poisson {
            mean: Duration::from_secs(5),
        },
        &all,
    );
    let (moisture, moisture_probe) = home.add_push_sensor(
        "moisture",
        PayloadSpec::KindOnly(EventKind::WaterDetected),
        EmissionSchedule::Script(vec![Time::from_secs(45), Time::from_secs(90)]),
        &[tv, fridge],
    );
    let (power, power_probe) = home.add_push_sensor(
        "whole-house-power",
        PayloadSpec::Scalar(ValueModel::RandomWalk {
            value: 1.2,
            step: 0.2,
            min: 0.2,
            max: 4.0,
        }),
        EmissionSchedule::Periodic(Duration::from_secs(2)),
        &[hub, washer],
    );
    let (lights, lights_probe) = home.add_actuator("lights", ActuationState::Switch(false), &[hub]);

    // Automated lighting (Gap: short gaps are fine).
    let lighting = AppBuilder::new(AppId(1), "auto-lighting")
        .operator(
            "Lights",
            CombinerSpec::Any,
            SwitchOnEvents {
                on_kinds: vec![EventKind::Motion],
                off_kinds: vec![],
                actuator: lights,
            },
        )
        .sensor(motion, Delivery::Gap, WindowSpec::count(1))
        .actuator(lights, Delivery::Gap)
        .done()
        .build()
        .expect("valid");
    let lighting_probe = home.add_app(lighting);

    // Flood alert (Gapless: a missed water event is catastrophic).
    let flood = AppBuilder::new(AppId(2), "flood-alert")
        .operator(
            "Flood",
            CombinerSpec::Any,
            AlertOnEvent {
                message: "WATER DETECTED".into(),
                siren: None,
            },
        )
        .sensor(moisture, Delivery::Gapless, WindowSpec::count(1))
        .done()
        .build()
        .expect("valid");
    let flood_probe = home.add_app(flood);

    // Inactive alert (Gapless, elder care).
    let inactive = AppBuilder::new(AppId(3), "inactive-alert")
        .operator(
            "Inactivity",
            CombinerSpec::Any,
            InactivityAlert {
                message: "no activity observed".into(),
            },
        )
        .sensor(
            motion,
            Delivery::Gapless,
            WindowSpec::time(Duration::from_secs(30)),
        )
        .done()
        .build()
        .expect("valid");
    let inactive_probe = home.add_app(inactive);

    // Energy billing (Gapless: missing events bill wrongly).
    let total = Arc::new(AtomicU64::new(0));
    let billing = AppBuilder::new(AppId(4), "energy-billing")
        .operator(
            "Billing",
            CombinerSpec::Any,
            Billing {
                total_millicents: Arc::clone(&total),
            },
        )
        .sensor(power, Delivery::Gapless, WindowSpec::count(1))
        .done()
        .build()
        .expect("valid");
    let billing_probe = home.add_app(billing);

    let home = home.build();

    // Partition the home in two for 30 seconds.
    net.partition_at(
        Time::from_secs(60),
        vec![
            vec![home.actor_of(hub), home.actor_of(tv)],
            vec![home.actor_of(fridge), home.actor_of(washer)],
        ],
    );
    net.heal_at(Time::from_secs(90));

    net.run_until(Time::from_secs(150));

    println!(
        "automated lighting: {} actuations, light {} ",
        lights_probe.effect_count(),
        lights_probe.state()
    );
    println!(
        "flood alert: {} water events emitted, {} alerts",
        moisture_probe.emitted(),
        flood_probe.alerts().len()
    );
    println!("inactive alert: {} alerts", inactive_probe.alerts().len());
    println!(
        "energy billing: {} power events emitted, {} billed, total {} millicents",
        power_probe.emitted(),
        billing_probe.unique_delivered(),
        total.load(Ordering::SeqCst)
    );
    println!(
        "lighting deliveries {} / flood {} / billing {}",
        lighting_probe.unique_delivered(),
        flood_probe.unique_delivered(),
        billing_probe.unique_delivered()
    );

    // Both scripted water events must reach the app despite the
    // partition (the second lands inside it).
    assert!(
        flood_probe.unique_delivered() >= 2,
        "flood events are gapless"
    );
    assert!(lights_probe.effect_count() > 0);
    assert!(total.load(Ordering::SeqCst) > 0);
    println!("smart home tour OK");
}
