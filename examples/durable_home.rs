//! Durability walk-through: the write-ahead log surviving a power loss.
//!
//! The failover demo's home (one motion sensor at 10 ev/s, five
//! processes, app anchored at host 0), but every process journals its
//! Gapless events to a real on-disk WAL (`FsBackend`). At t = 24 s the
//! application-bearing process crashes — and to make it interesting, a
//! torn write scribbles garbage onto the end of its log, as a real
//! power loss would. On recovery the process replays the log: the CRC
//! framing cuts the torn tail, everything before it is restored, and
//! the home ends the run having delivered (essentially) every event.
//!
//! ```text
//! cargo run --example durable_home
//! ```

use rivulet::core::app::{AppBuilder, CombinerSpec, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::storage::{FlushPolicy, FsBackend, StorageBackend, WalOptions};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, Time};
use std::io::Write as _;
use std::sync::Arc;

fn main() {
    let root = std::env::temp_dir().join(format!("rivulet-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    println!("WAL directories under {}", root.display());

    let mut net = SimNet::new(SimConfig::with_seed(11));
    let mut home = HomeBuilder::new(&mut net);
    let pids: Vec<_> = (0..5).map(|i| home.add_host(format!("host{i}"))).collect();
    let wal_root = root.clone();
    let mut home = home.with_storage(
        WalOptions {
            flush_policy: FlushPolicy::EveryN(8),
            segment_max_bytes: 64 * 1024,
        },
        Duration::from_secs(5),
        move |pid| {
            Arc::new(FsBackend::open(wal_root.join(format!("p{}", pid.as_u32()))).expect("wal dir"))
                as Arc<dyn StorageBackend>
        },
    );
    let (motion, motion_probe) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(100)),
        &pids,
    );
    let (anchor, _) = home.add_actuator("notifier", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "activity")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut rivulet::core::app::OpCtx, _: &rivulet::core::app::CombinedWindows| {},
        )
        .sensor(motion, Delivery::Gapless, WindowSpec::count(1))
        .actuator(anchor, Delivery::Gapless)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();

    // Crash the active process at 24 s…
    net.crash_at(home.actor_of(pids[0]), Time::from_secs(24));
    net.run_until(Time::from_millis(24_100));

    // …and let the power loss tear the end of its newest log segment:
    // 64 garbage bytes that recovery's CRC check must refuse.
    let p0_dir = root.join("p0");
    let newest = std::fs::read_dir(&p0_dir)
        .expect("wal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .max()
        .expect("at least one segment");
    let before = std::fs::metadata(&newest).expect("segment metadata").len();
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&newest)
        .expect("open segment");
    file.write_all(&[0xA5; 64]).expect("scribble");
    drop(file);
    println!(
        "t=24s   host0 crashed; scribbled 64 garbage bytes onto {} ({} bytes)",
        newest.file_name().unwrap().to_string_lossy(),
        before + 64,
    );

    net.recover_at(home.actor_of(pids[0]), Time::from_secs(30));
    net.run_until(Time::from_secs(50));
    println!("t=30s   host0 recovered: replayed its WAL, torn tail truncated");

    for (t, p, active) in probe.transitions() {
        println!(
            "  {t} {p} {}",
            if active {
                "PROMOTED to active logic node"
            } else {
                "demoted to shadow"
            }
        );
    }

    let emitted = motion_probe.emitted();
    let delivered = probe.unique_delivered() as u64;
    for pid in &pids {
        let dir = root.join(format!("p{}", pid.as_u32()));
        let bytes: u64 = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok().and_then(|e| e.metadata().ok()).map(|m| m.len()))
                    .sum()
            })
            .unwrap_or(0);
        let segments = std::fs::read_dir(&dir).map(Iterator::count).unwrap_or(0);
        println!("  {pid}: {segments} segment(s), {bytes} bytes on disk");
    }
    println!(
        "emitted {emitted}, unique delivered {delivered}, lost {}",
        emitted - delivered
    );
    // Recovery truncated the garbage and kept appending clean frames
    // over it: the scribble must be gone from the file.
    let tail = std::fs::read(&newest).expect("read segment");
    assert!(
        !tail.windows(64).any(|w| w == [0xA5; 64]),
        "recovery did not truncate the torn tail"
    );
    assert!(
        emitted - delivered <= 5,
        "durable gapless must not lose events"
    );
    println!(
        "OK: torn tail cut (was {} bytes incl. garbage), no meaningful loss",
        before + 64
    );

    let _ = std::fs::remove_dir_all(&root);
}
