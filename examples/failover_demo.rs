//! Failover walk-through: the Fig. 7 experiment, narrated.
//!
//! One motion sensor at 10 events/s reaches all five processes; the
//! application-bearing process is crashed at t = 24 s. Watch the
//! keep-alive failure detector fire, a shadow logic node promote
//! itself, and — under Gapless — the replicated backlog replay into
//! the new primary so that not a single ingested event is lost.
//!
//! ```text
//! cargo run --example failover_demo
//! ```

use rivulet::core::app::{AppBuilder, CombinerSpec, WindowSpec};
use rivulet::core::delivery::Delivery;
use rivulet::core::deploy::HomeBuilder;
use rivulet::devices::sensor::{EmissionSchedule, PayloadSpec};
use rivulet::net::sim::{SimConfig, SimNet};
use rivulet::types::{ActuationState, AppId, Duration, EventKind, Time};

fn run(delivery: Delivery) {
    println!("--- {delivery} delivery ---");
    let mut net = SimNet::new(SimConfig::with_seed(11));
    let mut home = HomeBuilder::new(&mut net);
    let pids: Vec<_> = (0..5).map(|i| home.add_host(format!("host{i}"))).collect();
    let (motion, motion_probe) = home.add_push_sensor(
        "motion",
        PayloadSpec::KindOnly(EventKind::Motion),
        EmissionSchedule::Periodic(Duration::from_millis(100)),
        &pids,
    );
    let (anchor, _) = home.add_actuator("notifier", ActuationState::Switch(false), &[pids[0]]);
    let app = AppBuilder::new(AppId(1), "activity")
        .operator(
            "sink",
            CombinerSpec::Any,
            |_: &mut rivulet::core::app::OpCtx, _: &rivulet::core::app::CombinedWindows| {},
        )
        .sensor(motion, delivery, WindowSpec::count(1))
        .actuator(anchor, delivery)
        .done()
        .build()
        .expect("valid app");
    let probe = home.add_app(app);
    let home = home.build();

    net.crash_at(home.actor_of(pids[0]), Time::from_secs(24));
    net.run_until(Time::from_secs(50));

    for (t, p, active) in probe.transitions() {
        println!(
            "  {t} {p} {}",
            if active {
                "PROMOTED to active logic node"
            } else {
                "demoted to shadow"
            }
        );
    }
    let emitted = motion_probe.emitted();
    let delivered = probe.unique_delivered();
    println!(
        "  emitted {emitted}, processed {delivered}, lost {}",
        emitted - delivered as u64
    );

    // Per-second timeline around the crash.
    let mut per_second = [0u32; 50];
    for d in probe.deliveries() {
        let s = (d.at.as_micros() / 1_000_000) as usize;
        if s < 50 {
            per_second[s] += 1;
        }
    }
    print!("  events/s t20..t32:");
    for (s, n) in per_second.iter().enumerate() {
        if (20..=32).contains(&s) {
            print!(" {n}");
        }
    }
    println!();
}

fn main() {
    run(Delivery::Gap);
    run(Delivery::Gapless);
    println!("failover demo OK");
}
